//! The Address Resolution Buffer (ARB), after Franklin & Sohi.
//!
//! The ARB is the Multiscalar mechanism that makes memory dependence
//! speculation *safe*: every speculative load and store deposits its
//! address, and when a store from an older task executes, the ARB reports
//! any younger-task loads to the same address that have already executed —
//! a memory dependence violation that forces those tasks to squash.
//!
//! Stages (processing units) are arranged on a ring; `head` names the
//! oldest (non-speculative) stage and age increases along the ring. The
//! timing model advances the head as tasks commit and clears per-stage
//! state on commit and squash.

use std::collections::HashMap;

type Addr = u64;

/// Counters describing ARB traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbStats {
    /// Load addresses recorded.
    pub loads: u64,
    /// Store addresses recorded.
    pub stores: u64,
    /// Violations detected (younger load before older store, same address).
    pub violations: u64,
    /// Entry allocations that exceeded the configured capacity.
    pub overflows: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    load_mask: u32,
    store_mask: u32,
    last_touch: u64,
}

impl Entry {
    fn is_empty(&self) -> bool {
        self.load_mask == 0 && self.store_mask == 0
    }
}

/// An address resolution buffer over `stages` ring-ordered stages.
///
/// # Examples
///
/// A younger task's load executes before an older task's store to the same
/// address — the ARB flags the violation:
///
/// ```
/// use mds_mem::Arb;
/// let mut arb = Arb::new(4, 32);
/// arb.load(2, 0x100);            // stage 2 (younger) loads first
/// let v = arb.store(0, 0x100);   // stage 0 (head/oldest) stores after
/// assert_eq!(v, vec![2]);
/// ```
#[derive(Debug, Clone)]
pub struct Arb {
    entries: HashMap<Addr, Entry>,
    stages: usize,
    head: usize,
    capacity: usize,
    tick: u64,
    stats: ArbStats,
}

impl Arb {
    /// Creates an ARB for `stages` stages with room for `capacity`
    /// addresses.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= stages <= 32` and `capacity > 0`.
    pub fn new(stages: usize, capacity: usize) -> Self {
        assert!((1..=32).contains(&stages), "ARB supports 1..=32 stages");
        assert!(capacity > 0, "ARB capacity must be positive");
        Arb {
            entries: HashMap::with_capacity(capacity),
            stages,
            head: 0,
            capacity,
            tick: 0,
            stats: ArbStats::default(),
        }
    }

    /// The oldest (non-speculative) stage.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Number of stages on the ring.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Live address entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no addresses are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Traffic counters.
    pub fn stats(&self) -> ArbStats {
        self.stats
    }

    /// Age of `stage` relative to the head (0 = oldest).
    fn position(&self, stage: usize) -> usize {
        (stage + self.stages - self.head) % self.stages
    }

    fn entry_mut(&mut self, addr: Addr) -> &mut Entry {
        self.tick += 1;
        if !self.entries.contains_key(&addr) && self.entries.len() >= self.capacity {
            self.stats.overflows += 1;
            // Prefer evicting an empty entry; otherwise the least recently
            // touched (the hardware would stall — we approximate and count).
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| (!e.is_empty(), e.last_touch))
                .map(|(&a, _)| a)
                .expect("capacity > 0");
            self.entries.remove(&victim);
        }
        let tick = self.tick;
        let e = self.entries.entry(addr).or_default();
        e.last_touch = tick;
        e
    }

    /// Records a speculative load by `stage` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn load(&mut self, stage: usize, addr: Addr) {
        assert!(stage < self.stages, "stage out of range");
        self.stats.loads += 1;
        self.entry_mut(addr).load_mask |= 1 << stage;
    }

    /// Records a store by `stage` to `addr` and returns the stages (in age
    /// order, oldest first) whose already-executed loads it violates.
    ///
    /// A younger load is shadowed — not violated — when a store from a
    /// stage strictly between the storing stage and the loading stage has
    /// already executed to the same address. A stage with both a load and
    /// its own store is conservatively treated as violated (the intra-task
    /// order is not visible to the ARB).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn store(&mut self, stage: usize, addr: Addr) -> Vec<usize> {
        assert!(stage < self.stages, "stage out of range");
        self.stats.stores += 1;
        let stages = self.stages;
        let head = self.head;
        let e = self.entry_mut(addr);
        let mut violations = Vec::new();
        let my_pos = (stage + stages - head) % stages;
        for pos in my_pos + 1..stages {
            let s = (head + pos) % stages;
            if e.load_mask & (1 << s) != 0 {
                violations.push(s);
            }
            if e.store_mask & (1 << s) != 0 {
                break; // younger store shadows everything beyond it
            }
        }
        e.store_mask |= 1 << stage;
        self.stats.violations += violations.len() as u64;
        violations
    }

    /// Clears all state belonging to `stage` (task commit or squash of one
    /// stage) and drops entries that become empty.
    pub fn clear_stage(&mut self, stage: usize) {
        assert!(stage < self.stages, "stage out of range");
        let bit = !(1u32 << stage);
        self.entries.retain(|_, e| {
            e.load_mask &= bit;
            e.store_mask &= bit;
            !e.is_empty()
        });
    }

    /// Commits the head task: clears the head stage and advances the ring.
    pub fn commit_head(&mut self) {
        self.clear_stage(self.head);
        self.head = (self.head + 1) % self.stages;
    }

    /// Squashes `stage` and everything younger than it.
    pub fn squash_from(&mut self, stage: usize) {
        assert!(stage < self.stages, "stage out of range");
        let from = self.position(stage);
        for pos in from..self.stages {
            let s = (self.head + pos) % self.stages;
            self.clear_stage(s);
        }
    }

    /// Drops every entry (full reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn no_violation_when_store_precedes_load() {
        let mut arb = Arb::new(4, 16);
        assert!(arb.store(0, 0x10).is_empty());
        arb.load(2, 0x10);
        // The load came after; nothing further stores, so no violation is
        // ever reported for it.
        assert!(arb.store(0, 0x20).is_empty());
    }

    #[test]
    fn violation_when_younger_load_ran_first() {
        let mut arb = Arb::new(4, 16);
        arb.load(1, 0x10);
        arb.load(3, 0x10);
        let v = arb.store(0, 0x10);
        assert_eq!(v, vec![1, 3]);
        assert_eq!(arb.stats().violations, 2);
    }

    #[test]
    fn intervening_store_shadows_younger_loads() {
        let mut arb = Arb::new(4, 16);
        arb.store(2, 0x10); // stage 2 stored already
        arb.load(3, 0x10); // stage 3 loaded (from stage 2's value)
        arb.load(1, 0x10); // stage 1 loaded speculatively
        let v = arb.store(0, 0x10);
        // Stage 1 is violated; stage 3 is shadowed by stage 2's store.
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn different_addresses_do_not_interact() {
        let mut arb = Arb::new(4, 16);
        arb.load(2, 0x10);
        assert!(arb.store(0, 0x18).is_empty());
    }

    #[test]
    fn ring_order_respects_head() {
        let mut arb = Arb::new(4, 16);
        // Advance head to 2: age order is 2, 3, 0, 1.
        arb.commit_head();
        arb.commit_head();
        assert_eq!(arb.head(), 2);
        arb.load(0, 0x10); // stage 0 is younger than stage 3 now
        let v = arb.store(3, 0x10);
        assert_eq!(v, vec![0]);
        // Stage 2 is the oldest; a store from 2 scans 3, 0, 1 — but stage
        // 3 already stored to this address, shadowing stages 0 and 1.
        arb.load(1, 0x10);
        let v = arb.store(2, 0x10);
        assert_eq!(v, Vec::<usize>::new());
        // At a different address nothing shadows: both loads are flagged.
        arb.load(0, 0x40);
        arb.load(1, 0x40);
        let v = arb.store(2, 0x40);
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn commit_clears_head_state() {
        let mut arb = Arb::new(4, 16);
        arb.load(0, 0x10);
        arb.store(0, 0x20);
        arb.commit_head();
        assert!(arb.is_empty());
        assert_eq!(arb.head(), 1);
    }

    #[test]
    fn squash_clears_younger_stages_only() {
        let mut arb = Arb::new(4, 16);
        arb.load(1, 0x10);
        arb.load(2, 0x10);
        arb.load(3, 0x10);
        arb.squash_from(2);
        let v = arb.store(0, 0x10);
        assert_eq!(v, vec![1]); // stages 2 and 3 were squashed
    }

    #[test]
    fn capacity_overflow_is_counted() {
        let mut arb = Arb::new(2, 2);
        arb.load(0, 0x10);
        arb.load(0, 0x20);
        arb.load(0, 0x30); // exceeds capacity
        assert_eq!(arb.stats().overflows, 1);
        assert_eq!(arb.len(), 2);
    }

    #[test]
    fn empty_entries_are_garbage_collected() {
        let mut arb = Arb::new(2, 8);
        arb.load(1, 0x10);
        arb.clear_stage(1);
        assert!(arb.is_empty());
    }

    #[test]
    #[should_panic(expected = "stage out of range")]
    fn out_of_range_stage_panics() {
        let mut arb = Arb::new(2, 8);
        arb.load(2, 0x10);
    }

    properties! {
        /// A store never reports a violation for a stage at or older than
        /// itself, and all reported stages actually loaded the address.
        #[test]
        fn violations_are_younger_loads(
            ops in vec_of((0usize..4, 0u64..8, any::<bool>()), 0..100)
        ) {
            let mut arb = Arb::new(4, 64);
            let mut loaded: Vec<(usize, u64)> = Vec::new();
            for (stage, addr, is_store) in ops {
                if is_store {
                    let v = arb.store(stage, addr);
                    for s in v {
                        prop_assert!(s != stage);
                        // Reported stage must have an outstanding load there.
                        prop_assert!(loaded.iter().any(|&(ls, la)| ls == s && la == addr));
                    }
                } else {
                    arb.load(stage, addr);
                    loaded.push((stage, addr));
                }
            }
        }
    }
}
