//! A split-transaction memory bus with contention.

/// A shared memory bus modeled as an earliest-free-time resource.
///
/// The paper's configuration: "all memory requests are handled by a single
/// 4-word, split-transaction memory bus; each memory access requires a 10
/// cycle access latency for the first 4 words and 1 cycle for each
/// additional 4 words, plus any bus contention." A 64-byte block fill is
/// therefore 10 + 3 additional cycles, which is exactly the paper's quoted
/// miss penalty of "10+3 cycles, plus any bus contention".
///
/// # Examples
///
/// ```
/// use mds_mem::Bus;
/// let mut bus = Bus::new(10, 1, 4);
/// let first = bus.request(0, 16); // 16 words: 10 + 3 extra
/// assert_eq!(first, 13);
/// // A second request issued at the same time queues behind the first.
/// let second = bus.request(0, 4);
/// assert_eq!(second, 13 + 10);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    free_at: u64,
    first_latency: u64,
    extra_latency: u64,
    words_per_beat: u64,
    transactions: u64,
    busy_cycles: u64,
}

impl Bus {
    /// Creates a bus: `first_latency` cycles for the first beat of
    /// `words_per_beat` words, then `extra_latency` per additional beat.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_beat == 0`.
    pub fn new(first_latency: u64, extra_latency: u64, words_per_beat: u64) -> Self {
        assert!(words_per_beat > 0, "bus beat width must be positive");
        Bus {
            free_at: 0,
            first_latency,
            extra_latency,
            words_per_beat,
            transactions: 0,
            busy_cycles: 0,
        }
    }

    /// The paper's memory bus: 10-cycle first beat, 1 cycle per extra
    /// 4-word beat.
    pub fn paper_default() -> Self {
        Bus::new(10, 1, 4)
    }

    /// Requests a transfer of `words` (4-byte) words starting no earlier
    /// than `now`; returns the cycle at which the data is fully delivered.
    /// The bus is occupied for the whole transfer (split transactions are
    /// serialized, modeling contention).
    pub fn request(&mut self, now: u64, words: u64) -> u64 {
        let beats = words.div_ceil(self.words_per_beat).max(1);
        let duration = self.first_latency + (beats - 1) * self.extra_latency;
        let start = now.max(self.free_at);
        self.free_at = start + duration;
        self.transactions += 1;
        self.busy_cycles += duration;
        self.free_at
    }

    /// Cycle at which the bus next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Number of transactions served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles the bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Resets to idle (between independent simulations).
    pub fn reset(&mut self) {
        self.free_at = 0;
        self.transactions = 0;
        self.busy_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn block_fill_matches_paper_miss_penalty() {
        let mut bus = Bus::paper_default();
        // 64-byte block = 16 4-byte words = 4 beats: 10 + 3.
        assert_eq!(bus.request(0, 16), 13);
    }

    #[test]
    fn contention_serializes() {
        let mut bus = Bus::paper_default();
        let a = bus.request(5, 4);
        assert_eq!(a, 15);
        let b = bus.request(6, 4); // queued behind a
        assert_eq!(b, 25);
        let c = bus.request(100, 4); // idle again
        assert_eq!(c, 110);
        assert_eq!(bus.transactions(), 3);
        assert_eq!(bus.busy_cycles(), 30);
    }

    #[test]
    fn zero_words_still_one_beat() {
        let mut bus = Bus::new(10, 1, 4);
        assert_eq!(bus.request(0, 0), 10);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut bus = Bus::paper_default();
        bus.request(0, 16);
        bus.reset();
        assert_eq!(bus.free_at(), 0);
        assert_eq!(bus.transactions(), 0);
    }

    #[test]
    #[should_panic(expected = "beat width")]
    fn zero_beat_width_panics() {
        let _ = Bus::new(10, 1, 0);
    }

    properties! {
        /// Completion times are monotone in request order.
        #[test]
        fn completions_are_monotone(reqs in vec_of((0u64..1000, 1u64..64), 1..50)) {
            let mut bus = Bus::paper_default();
            let mut sorted = reqs.clone();
            sorted.sort_by_key(|&(t, _)| t);
            let mut last = 0;
            for (t, w) in sorted {
                let done = bus.request(t, w);
                prop_assert!(done >= last);
                prop_assert!(done >= t + 10);
                last = done;
            }
        }
    }
}
