//! Interleaved cache banks behind a shared bus.

use crate::bus::Bus;
use crate::cache::{Cache, CacheConfig, CacheStats};
use mds_harness::json::{Json, ToJson};

type Addr = u64;

/// Configuration for a [`BankedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedCacheConfig {
    /// Number of interleaved banks (power of two). The paper uses twice as
    /// many banks as processing units.
    pub banks: usize,
    /// Geometry of each bank.
    pub bank_config: CacheConfig,
    /// Cycles for a bank hit (the paper: "a data bank access returns 1 word
    /// in a hit time of 2 cycles").
    pub hit_latency: u64,
    /// Words (4-byte) transferred on a miss fill — one block.
    pub fill_words: u64,
}

impl BankedCacheConfig {
    /// The paper's per-unit scaling: `2 * units` banks of 8 KiB
    /// direct-mapped 64-byte-block cache, 2-cycle hits.
    pub fn paper_default(units: usize) -> Self {
        BankedCacheConfig {
            banks: (2 * units).next_power_of_two(),
            bank_config: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 1,
                block_bytes: 64,
            },
            hit_latency: 2,
            fill_words: 16,
        }
    }
}

impl ToJson for BankedCacheConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("banks", self.banks)
            .field("bank_config", self.bank_config)
            .field("hit_latency", self.hit_latency)
            .field("fill_words", self.fill_words)
    }
}

/// The outcome of a timed data-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DCacheAccess {
    /// Cycle at which the data is available (loads) or the write retires.
    pub done_at: u64,
    /// Whether the access hit in its bank.
    pub hit: bool,
    /// Which bank served the access.
    pub bank: usize,
}

/// Interleaved data-cache banks with per-bank occupancy and a shared bus
/// for misses — the paper's crossbar-connected bank array.
///
/// Bank selection interleaves on block address, so consecutive blocks land
/// in different banks; two accesses to the same bank in the same cycle
/// serialize (bank conflict), and misses additionally contend for the bus.
///
/// # Examples
///
/// ```
/// use mds_mem::{BankedCache, BankedCacheConfig, Bus};
/// let mut bus = Bus::paper_default();
/// let mut dc = BankedCache::new(BankedCacheConfig::paper_default(4));
/// let miss = dc.access(0, 0x1000, false, &mut bus);
/// assert!(!miss.hit);
/// let hit = dc.access(miss.done_at, 0x1000, false, &mut bus);
/// assert!(hit.hit);
/// assert_eq!(hit.done_at, miss.done_at + 2);
/// ```
#[derive(Debug, Clone)]
pub struct BankedCache {
    banks: Vec<Cache>,
    busy_until: Vec<u64>,
    config: BankedCacheConfig,
    block_shift: u32,
    bank_mask: u64,
    conflicts: u64,
}

impl BankedCache {
    /// Builds the bank array.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a positive power of two, or on an invalid
    /// bank geometry.
    pub fn new(config: BankedCacheConfig) -> Self {
        assert!(
            config.banks.is_power_of_two() && config.banks > 0,
            "banks must be a power of two"
        );
        BankedCache {
            banks: (0..config.banks)
                .map(|_| Cache::new(config.bank_config))
                .collect(),
            busy_until: vec![0; config.banks],
            block_shift: config.bank_config.block_bytes.trailing_zeros(),
            bank_mask: (config.banks - 1) as u64,
            config,
            conflicts: 0,
        }
    }

    /// The bank index `addr` maps to.
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((addr >> self.block_shift) & self.bank_mask) as usize
    }

    /// Performs a timed access starting no earlier than `now`.
    pub fn access(&mut self, now: u64, addr: Addr, is_write: bool, bus: &mut Bus) -> DCacheAccess {
        let bank = self.bank_of(addr);
        let start = now.max(self.busy_until[bank]);
        if start > now {
            self.conflicts += 1;
        }
        let hit = self.banks[bank].access(addr, is_write);
        let done_at = if hit {
            start + self.config.hit_latency
        } else {
            // Miss detected after the hit-time tag probe, then a bus fill.
            bus.request(start + self.config.hit_latency, self.config.fill_words)
        };
        self.busy_until[bank] = done_at;
        DCacheAccess { done_at, hit, bank }
    }

    /// Aggregate hit/miss statistics across all banks.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.banks {
            total.hits += b.stats().hits;
            total.misses += b.stats().misses;
        }
        total
    }

    /// Number of accesses delayed by a busy bank.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Invalidates all banks and clears occupancy.
    pub fn flush(&mut self) {
        for b in &mut self.banks {
            b.flush();
        }
        self.busy_until.fill(0);
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (BankedCache, Bus) {
        let cfg = BankedCacheConfig {
            banks: 4,
            bank_config: CacheConfig {
                size_bytes: 1024,
                ways: 1,
                block_bytes: 64,
            },
            hit_latency: 2,
            fill_words: 16,
        };
        (BankedCache::new(cfg), Bus::paper_default())
    }

    #[test]
    fn consecutive_blocks_interleave() {
        let (dc, _) = small();
        assert_eq!(dc.bank_of(0), 0);
        assert_eq!(dc.bank_of(64), 1);
        assert_eq!(dc.bank_of(128), 2);
        assert_eq!(dc.bank_of(192), 3);
        assert_eq!(dc.bank_of(256), 0);
        // Same block, same bank regardless of offset.
        assert_eq!(dc.bank_of(63), 0);
    }

    #[test]
    fn miss_pays_bus_latency_hit_does_not() {
        let (mut dc, mut bus) = small();
        let m = dc.access(0, 0, false, &mut bus);
        assert!(!m.hit);
        assert_eq!(m.done_at, 2 + 13); // tag probe + 10+3 fill
        let h = dc.access(m.done_at, 0, false, &mut bus);
        assert!(h.hit);
        assert_eq!(h.done_at, m.done_at + 2);
    }

    #[test]
    fn same_bank_conflicts_serialize() {
        let (mut dc, mut bus) = small();
        // Warm two blocks in the same bank (0 and 256).
        let a = dc.access(0, 0, false, &mut bus);
        let _ = dc.access(a.done_at, 256, false, &mut bus);
        // Both hit now; issue both at cycle 100.
        let first = dc.access(100, 0, false, &mut bus);
        let second = dc.access(100, 256, false, &mut bus);
        assert!(first.hit && second.hit);
        assert_eq!(first.done_at, 102);
        assert_eq!(second.done_at, 104); // waited for the bank
        assert_eq!(dc.conflicts(), 1);
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let (mut dc, mut bus) = small();
        let a = dc.access(0, 0, false, &mut bus);
        let b = dc.access(a.done_at, 64, false, &mut bus);
        let t = b.done_at;
        let x = dc.access(t, 0, false, &mut bus);
        let y = dc.access(t, 64, false, &mut bus);
        assert_eq!(x.done_at, t + 2);
        assert_eq!(y.done_at, t + 2);
    }

    #[test]
    fn two_misses_contend_for_the_bus() {
        let (mut dc, mut bus) = small();
        let a = dc.access(0, 0, false, &mut bus); // bank 0
        let b = dc.access(0, 64, false, &mut bus); // bank 1, miss too
        assert_eq!(a.done_at, 15);
        assert_eq!(b.done_at, 28); // bus busy until 15, then 13 more
    }

    #[test]
    fn stats_aggregate_and_flush() {
        let (mut dc, mut bus) = small();
        dc.access(0, 0, false, &mut bus);
        dc.access(20, 64, true, &mut bus);
        dc.access(40, 0, false, &mut bus);
        let s = dc.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        dc.flush();
        assert_eq!(dc.stats().accesses(), 3); // stats survive flush
        let again = dc.access(60, 0, false, &mut bus);
        assert!(!again.hit); // but contents do not
    }

    #[test]
    fn paper_default_scales_banks_with_units() {
        assert_eq!(BankedCacheConfig::paper_default(4).banks, 8);
        assert_eq!(BankedCacheConfig::paper_default(8).banks, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_panics() {
        let cfg = BankedCacheConfig {
            banks: 3,
            bank_config: CacheConfig {
                size_bytes: 1024,
                ways: 1,
                block_bytes: 64,
            },
            hit_latency: 2,
            fill_words: 16,
        };
        let _ = BankedCache::new(cfg);
    }
}
