//! Memory-system substrate for the `mds` timing models.
//!
//! The paper's Multiscalar configuration (§5.2) uses, per processing unit,
//! a 32 KiB 2-way instruction cache, and behind a crossbar a set of
//! interleaved data banks (8 KiB direct-mapped each) with 32-entry address
//! resolution buffers, all sharing a single split-transaction memory bus.
//! This crate provides those pieces as reusable components:
//!
//! - [`Cache`]: a set-associative, LRU, allocate-on-miss cache model,
//! - [`Bus`]: a split-transaction bus with contention (earliest-free-time),
//! - [`BankedCache`]: interleaved cache banks with per-bank occupancy and a
//!   shared bus for misses,
//! - [`Arb`]: the address resolution buffer (after Franklin & Sohi) that
//!   detects cross-task memory dependence violations.
//!
//! All timing is expressed as plain `u64` cycle numbers — components store
//! *busy-until* state instead of running an event queue, which keeps the
//! simulators fast and deterministic.
//!
//! # Examples
//!
//! ```
//! use mds_mem::{Cache, CacheConfig};
//!
//! let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, block_bytes: 64 });
//! assert!(!c.access(0x100, false)); // cold miss
//! assert!(c.access(0x100, false));  // now a hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arb;
pub mod banked;
pub mod bus;
pub mod cache;

pub use arb::{Arb, ArbStats};
pub use banked::{BankedCache, BankedCacheConfig};
pub use bus::Bus;
pub use cache::{Cache, CacheConfig, CacheStats};
