//! Register names and files.

use std::fmt;

/// Which architectural register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum File {
    /// Integer registers `r0..r31` (`r0` reads as zero).
    Int,
    /// Floating-point registers `f0..f31`.
    Fp,
}

impl fmt::Display for File {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            File::Int => write!(f, "int"),
            File::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register index (0–31) within either file.
///
/// The conventional integer-register aliases are provided as associated
/// constants; floating-point code just uses [`Reg::f`]/[`Reg::x`] indices.
///
/// # Examples
///
/// ```
/// use mds_isa::Reg;
/// assert_eq!(Reg::ZERO.index(), 0);
/// assert_eq!(Reg::T0, Reg::x(5));
/// assert_eq!(Reg::x(5).to_string(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address (link register for `jal`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Scratch/temporary registers.
    pub const T0: Reg = Reg(5);
    /// Temporary register 1.
    pub const T1: Reg = Reg(6);
    /// Temporary register 2.
    pub const T2: Reg = Reg(7);
    /// Temporary register 3.
    pub const T3: Reg = Reg(28);
    /// Temporary register 4.
    pub const T4: Reg = Reg(29);
    /// Temporary register 5.
    pub const T5: Reg = Reg(30);
    /// Temporary register 6.
    pub const T6: Reg = Reg(31);
    /// Callee-saved register 0.
    pub const S0: Reg = Reg(8);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(9);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(23);
    /// Callee-saved register 8.
    pub const S8: Reg = Reg(24);
    /// Callee-saved register 9.
    pub const S9: Reg = Reg(25);
    /// Callee-saved register 10.
    pub const S10: Reg = Reg(26);
    /// Callee-saved register 11.
    pub const S11: Reg = Reg(27);
    /// Argument/result register 0.
    pub const A0: Reg = Reg(10);
    /// Argument register 1.
    pub const A1: Reg = Reg(11);
    /// Argument register 2.
    pub const A2: Reg = Reg(12);
    /// Argument register 3.
    pub const A3: Reg = Reg(13);
    /// Argument register 4.
    pub const A4: Reg = Reg(14);
    /// Argument register 5.
    pub const A5: Reg = Reg(15);
    /// Argument register 6.
    pub const A6: Reg = Reg(16);
    /// Argument register 7.
    pub const A7: Reg = Reg(17);

    /// Constructs a register from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn x(index: u8) -> Reg {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Alias of [`Reg::x`] used when naming floating-point registers for
    /// readability at call sites (`Reg::f(2)` reads as `f2`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn f(index: u8) -> Reg {
        Reg::x(index)
    }

    /// The raw index (0–31).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The canonical ABI name, e.g. `t0`, `s3`, `a1`, `zero`.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Parses an integer-register name: an ABI alias (`t0`, `sp`, …) or a
    /// raw `rN`/`xN` form. Returns `None` for anything else.
    ///
    /// # Examples
    ///
    /// ```
    /// use mds_isa::Reg;
    /// assert_eq!(Reg::parse("t0"), Some(Reg::T0));
    /// assert_eq!(Reg::parse("r31"), Some(Reg::x(31)));
    /// assert_eq!(Reg::parse("bogus"), None);
    /// ```
    pub fn parse(name: &str) -> Option<Reg> {
        if let Some(pos) = ABI_NAMES.iter().position(|&n| n == name) {
            return Some(Reg(pos as u8));
        }
        let rest = name.strip_prefix('r').or_else(|| name.strip_prefix('x'))?;
        let idx: u8 = rest.parse().ok()?;
        (idx < 32).then_some(Reg(idx))
    }

    /// Parses a floating-point register name `fN`.
    pub fn parse_fp(name: &str) -> Option<Reg> {
        let rest = name.strip_prefix('f')?;
        let idx: u8 = rest.parse().ok()?;
        (idx < 32).then_some(Reg(idx))
    }

    /// Formats the register as an FP register name (`f7`).
    pub fn fp_name(self) -> String {
        format!("f{}", self.0)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_match_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::T0.index(), 5);
        assert_eq!(Reg::S0.index(), 8);
        assert_eq!(Reg::A0.index(), 10);
        assert_eq!(Reg::T6.index(), 31);
    }

    #[test]
    fn parse_roundtrips_all_abi_names() {
        for i in 0..32u8 {
            let r = Reg::x(i);
            assert_eq!(Reg::parse(r.abi_name()), Some(r), "alias {}", r.abi_name());
            assert_eq!(Reg::parse(&format!("r{i}")), Some(r));
            assert_eq!(Reg::parse(&format!("x{i}")), Some(r));
        }
    }

    #[test]
    fn parse_rejects_out_of_range() {
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("f2"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse_fp("f32"), None);
        assert_eq!(Reg::parse_fp("f7"), Some(Reg::f(7)));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn x_panics_out_of_range() {
        let _ = Reg::x(32);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::A3.to_string(), "a3");
        assert_eq!(Reg::f(9).fp_name(), "f9");
    }

    #[test]
    fn is_zero_only_for_r0() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
    }
}
