//! A fluent builder for authoring programs in Rust.
//!
//! [`ProgramBuilder`] is how the synthetic workloads in `mds-workloads` are
//! written: one method per opcode, forward-referencing labels, a bump
//! allocator for the data segment, and `.task` annotations for Multiscalar
//! task boundaries.
//!
//! # Examples
//!
//! A loop that sums an array:
//!
//! ```
//! use mds_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let arr = b.alloc_init("arr", &[1, 2, 3, 4]);
//! b.li(Reg::S0, arr as i32);
//! b.li(Reg::S1, 4); // element count
//! b.li(Reg::A0, 0); // sum
//! b.label("loop");
//! b.task(); // each iteration is a Multiscalar task
//! b.ld(Reg::T0, Reg::S0, 0);
//! b.add(Reg::A0, Reg::A0, Reg::T0);
//! b.addi(Reg::S0, Reg::S0, 8);
//! b.addi(Reg::S1, Reg::S1, -1);
//! b.bne(Reg::S1, Reg::ZERO, "loop");
//! b.halt();
//! let program = b.build()?;
//! assert!(program.is_task_head(3));
//! # Ok::<(), mds_isa::BuildError>(())
//! ```

use crate::inst::Instruction;
use crate::op::Opcode;
use crate::program::{Program, DATA_BASE};
use crate::reg::Reg;
use crate::{Addr, Pc};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A branch/jump target: either a label or an absolute PC.
///
/// Most call sites pass a `&str` label; tests occasionally pass a raw PC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A named label resolved at [`ProgramBuilder::build`] time.
    Label(String),
    /// An absolute instruction index.
    Pc(Pc),
}

impl From<&str> for Target {
    fn from(s: &str) -> Target {
        Target::Label(s.to_string())
    }
}

impl From<String> for Target {
    fn from(s: String) -> Target {
        Target::Label(s)
    }
}

impl From<Pc> for Target {
    fn from(pc: Pc) -> Target {
        Target::Pc(pc)
    }
}

/// Error produced by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch or jump referenced a label that was never defined.
    UnknownLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A data symbol was defined twice.
    DuplicateSymbol(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::DuplicateSymbol(s) => write!(f, "duplicate data symbol `{s}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Program`] instruction by instruction.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    insts: Vec<Instruction>,
    // (instruction index, label) pairs whose imm must be patched.
    fixups: Vec<(usize, String)>,
    labels: HashMap<String, Pc>,
    duplicate_label: Option<String>,
    duplicate_symbol: Option<String>,
    data: BTreeMap<Addr, u64>,
    symbols: BTreeMap<String, Addr>,
    task_heads: BTreeSet<Pc>,
    next_data: Addr,
}

impl ProgramBuilder {
    /// Creates an empty builder; data allocation starts at [`DATA_BASE`].
    pub fn new() -> Self {
        ProgramBuilder {
            next_data: DATA_BASE,
            ..Default::default()
        }
    }

    /// The PC the next emitted instruction will occupy.
    pub fn here(&self) -> Pc {
        self.insts.len() as Pc
    }

    /// Defines `name` at the current PC.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.here()).is_some() {
            self.duplicate_label.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Marks the *next* emitted instruction as the start of a Multiscalar
    /// task.
    pub fn task(&mut self) -> &mut Self {
        self.task_heads.insert(self.here());
        self
    }

    /// Allocates `words` zero-initialized 8-byte words in the data segment,
    /// binds `name` to the base address, and returns it.
    pub fn alloc(&mut self, name: &str, words: usize) -> Addr {
        let base = self.next_data;
        self.define_symbol(name, base);
        self.next_data += (words as Addr) * 8;
        base
    }

    /// Allocates and initializes a data-segment array; returns its base.
    pub fn alloc_init(&mut self, name: &str, values: &[u64]) -> Addr {
        let base = self.alloc(name, values.len());
        for (i, &v) in values.iter().enumerate() {
            if v != 0 {
                self.data.insert(base + (i as Addr) * 8, v);
            }
        }
        base
    }

    /// Allocates `bytes` bytes (rounded up to whole words).
    pub fn alloc_bytes(&mut self, name: &str, bytes: usize) -> Addr {
        self.alloc(name, bytes.div_ceil(8))
    }

    /// Writes an initial value at an absolute data address.
    pub fn init_word(&mut self, addr: Addr, value: u64) -> &mut Self {
        self.data.insert(addr, value);
        self
    }

    /// Binds `name` to an explicit address (used by the assembler's `.sym`).
    pub fn define_symbol(&mut self, name: &str, addr: Addr) {
        if self.symbols.insert(name.to_string(), addr).is_some() {
            self.duplicate_symbol
                .get_or_insert_with(|| name.to_string());
        }
        self.next_data = self.next_data.max(addr);
    }

    /// Looks up a previously allocated symbol.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit_target(&mut self, mut inst: Instruction, target: Target) -> &mut Self {
        match target {
            Target::Pc(pc) => inst.imm = pc as i32,
            Target::Label(l) => self.fixups.push((self.insts.len(), l)),
        }
        self.insts.push(inst);
        self
    }

    /// Finishes the program, resolving all label references.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for unknown or duplicate labels/symbols.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if let Some(l) = self.duplicate_label {
            return Err(BuildError::DuplicateLabel(l));
        }
        if let Some(s) = self.duplicate_symbol {
            return Err(BuildError::DuplicateSymbol(s));
        }
        for (idx, label) in &self.fixups {
            let pc = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UnknownLabel(label.clone()))?;
            self.insts[*idx].imm = pc as i32;
        }
        Ok(Program::from_parts(
            self.insts,
            self.data,
            self.symbols,
            self.task_heads,
            0,
        ))
    }
}

macro_rules! rrr_ops {
    ($($method:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                /// Emits the corresponding three-register instruction.
                pub fn $method(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.emit(Instruction::rrr(Opcode::$op, rd, rs1, rs2))
                }
            )+
        }
    };
}

rrr_ops! {
    add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
    and => And, or => Or, xor => Xor, sll => Sll, srl => Srl, sra => Sra,
    slt => Slt, sltu => Sltu,
    fadd => FAdd, fsub => FSub, fmul => FMul, fdiv => FDiv,
    feq => Feq, flt => Flt, fle => Fle,
}

macro_rules! rri_ops {
    ($($method:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                /// Emits the corresponding register-immediate instruction.
                pub fn $method(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
                    self.emit(Instruction::rri(Opcode::$op, rd, rs1, imm))
                }
            )+
        }
    };
}

rri_ops! {
    addi => Addi, andi => Andi, ori => Ori, xori => Xori,
    slli => Slli, srli => Srli, srai => Srai, slti => Slti,
}

macro_rules! branch_ops {
    ($($method:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                /// Emits a conditional branch to `target`.
                pub fn $method(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
                    self.emit_target(
                        Instruction::branch(Opcode::$op, rs1, rs2, 0),
                        target.into(),
                    )
                }
            )+
        }
    };
}

branch_ops! {
    beq => Beq, bne => Bne, blt => Blt, bge => Bge, bltu => Bltu, bgeu => Bgeu,
}

impl ProgramBuilder {
    /// Loads a signed 32-bit constant: `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.emit(Instruction::ri(Opcode::Li, rd, imm))
    }

    /// Loads a data-segment symbol's address.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has not been allocated yet (data symbols cannot
    /// be forward-referenced; allocate before use).
    pub fn la(&mut self, rd: Reg, symbol: &str) -> &mut Self {
        let addr = self
            .symbol(symbol)
            .unwrap_or_else(|| panic!("data symbol `{symbol}` not allocated before use"));
        self.li(rd, addr as i32)
    }

    /// Copy a register: `rd <- rs` (encoded as `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Word load: `rd <- mem64[rs1 + disp]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::load(Opcode::Ld, rd, base, disp))
    }

    /// Byte load: `rd <- zext(mem8[rs1 + disp])`.
    pub fn lb(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::load(Opcode::Lb, rd, base, disp))
    }

    /// Word store: `mem64[base + disp] <- src`.
    pub fn sd(&mut self, src: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::store(Opcode::Sd, src, base, disp))
    }

    /// Byte store: `mem8[base + disp] <- src[7:0]`.
    pub fn sb(&mut self, src: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::store(Opcode::Sb, src, base, disp))
    }

    /// FP word load: `fd <- mem64[rs1 + disp]` (bit pattern).
    pub fn fld(&mut self, fd: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::load(Opcode::Fld, fd, base, disp))
    }

    /// FP word store.
    pub fn fsd(&mut self, fsrc: Reg, base: Reg, disp: i32) -> &mut Self {
        self.emit(Instruction::store(Opcode::Fsd, fsrc, base, disp))
    }

    /// FP square root.
    pub fn fsqrt(&mut self, fd: Reg, fs: Reg) -> &mut Self {
        self.emit(Instruction::rr(Opcode::FSqrt, fd, fs))
    }

    /// FP register move.
    pub fn fmov(&mut self, fd: Reg, fs: Reg) -> &mut Self {
        self.emit(Instruction::rr(Opcode::FMov, fd, fs))
    }

    /// FP negate.
    pub fn fneg(&mut self, fd: Reg, fs: Reg) -> &mut Self {
        self.emit(Instruction::rr(Opcode::FNeg, fd, fs))
    }

    /// Convert a signed integer register to double: `fd <- (f64)rs1`.
    pub fn fcvt_d_l(&mut self, fd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Instruction::rr(Opcode::FCvtDl, fd, rs1))
    }

    /// Truncate a double to a signed integer: `rd <- (i64)fs1`.
    pub fn fcvt_l_d(&mut self, rd: Reg, fs1: Reg) -> &mut Self {
        self.emit(Instruction::rr(Opcode::FCvtLd, rd, fs1))
    }

    /// Unconditional jump.
    pub fn j(&mut self, target: impl Into<Target>) -> &mut Self {
        self.emit_target(
            Instruction {
                op: Opcode::J,
                ..Instruction::NOP
            },
            target.into(),
        )
    }

    /// Jump and link: `rd <- pc + 1; pc <- target`.
    pub fn jal(&mut self, rd: Reg, target: impl Into<Target>) -> &mut Self {
        self.emit_target(
            Instruction {
                op: Opcode::Jal,
                rd,
                ..Instruction::NOP
            },
            target.into(),
        )
    }

    /// Indirect jump through a register.
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.emit(Instruction {
            op: Opcode::Jr,
            rs1,
            ..Instruction::NOP
        })
    }

    /// Call a subroutine (`jal ra, target`).
    pub fn call(&mut self, target: impl Into<Target>) -> &mut Self {
        self.jal(Reg::RA, target)
    }

    /// Return from a subroutine (`jr ra`).
    pub fn ret(&mut self) -> &mut Self {
        self.jr(Reg::RA)
    }

    /// No-operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instruction::NOP)
    }

    /// Stops the machine; every workload ends with `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instruction {
            op: Opcode::Halt,
            ..Instruction::NOP
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.beq(Reg::T0, Reg::ZERO, "end"); // forward
        b.j("start"); // backward
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap().imm, 2); // "end" is pc 2
        assert_eq!(p.fetch(1).unwrap().imm, 0); // "start" is pc 0
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(b.build(), Err(BuildError::UnknownLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(b.build(), Err(BuildError::DuplicateLabel("x".into())));
    }

    #[test]
    fn duplicate_symbol_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.alloc("t", 1);
        b.alloc("t", 1);
        b.halt();
        assert_eq!(b.build(), Err(BuildError::DuplicateSymbol("t".into())));
    }

    #[test]
    fn data_allocation_is_contiguous_and_aligned() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc("a", 3);
        let c = b.alloc_bytes("c", 9); // rounds to 2 words
        let d = b.alloc("d", 1);
        assert_eq!(a, DATA_BASE);
        assert_eq!(c, DATA_BASE + 24);
        assert_eq!(d, DATA_BASE + 24 + 16);
    }

    #[test]
    fn alloc_init_skips_zero_words() {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_init("v", &[0, 7, 0, 9]);
        b.halt();
        let p = b.build().unwrap();
        let data: Vec<(u64, u64)> = p.initial_data().collect();
        assert_eq!(data, vec![(base + 8, 7), (base + 24, 9)]);
    }

    #[test]
    #[should_panic(expected = "not allocated before use")]
    fn la_of_unallocated_symbol_panics() {
        let mut b = ProgramBuilder::new();
        b.la(Reg::T0, "ghost");
    }

    #[test]
    fn task_marks_next_instruction() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.task();
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        assert!(!p.is_task_head(0));
        assert!(p.is_task_head(1));
    }

    #[test]
    fn call_ret_use_link_register() {
        let mut b = ProgramBuilder::new();
        b.call("f");
        b.halt();
        b.label("f");
        b.ret();
        let p = b.build().unwrap();
        let call = p.fetch(0).unwrap();
        assert_eq!(call.op, Opcode::Jal);
        assert_eq!(call.rd, Reg::RA);
        assert_eq!(call.imm, 2);
        let ret = p.fetch(2).unwrap();
        assert_eq!(ret.op, Opcode::Jr);
        assert_eq!(ret.rs1, Reg::RA);
    }

    #[test]
    fn mv_is_addi_zero() {
        let mut b = ProgramBuilder::new();
        b.mv(Reg::T0, Reg::T1);
        b.halt();
        let p = b.build().unwrap();
        let i = p.fetch(0).unwrap();
        assert_eq!(i.op, Opcode::Addi);
        assert_eq!(i.imm, 0);
    }
}
