//! Opcodes, instruction formats, and functional-unit classes.

use std::fmt;

/// The functional-unit class an instruction executes on.
///
/// The Multiscalar timing model configures one latency and an issue-port
/// count per class (2 simple-integer units, 1 complex-integer unit, 1 FP
/// unit, 1 branch unit, 1 memory unit per processing element, as in the
/// paper's §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU operations.
    SimpleInt,
    /// Multi-cycle integer operations (multiply, divide, remainder).
    ComplexInt,
    /// Floating-point operations.
    Fp,
    /// Loads and stores (address generation + cache access).
    Mem,
    /// Control transfers.
    Branch,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::SimpleInt => "simple-int",
            FuClass::ComplexInt => "complex-int",
            FuClass::Fp => "fp",
            FuClass::Mem => "mem",
            FuClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// The assembly format of an opcode; drives both disassembly and parsing so
/// the two cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `op rd, rs1, rs2`
    Rrr,
    /// `op rd, rs1, imm`
    Rri,
    /// `op rd, imm`
    Ri,
    /// `op rd, imm(rs1)` — integer load
    Load,
    /// `op rs2, imm(rs1)` — integer store (`rs2` is the data source)
    Store,
    /// `op rs1, rs2, target`
    Branch,
    /// `op target`
    Jump,
    /// `op rd, target`
    Jal,
    /// `op rs1`
    JumpReg,
    /// `op` with no operands
    Plain,
    /// `op fd, fs1, fs2`
    Frrr,
    /// `op fd, fs1`
    Frr,
    /// `op fd, imm(rs1)` — FP load
    FLoad,
    /// `op fs2, imm(rs1)` — FP store
    FStore,
    /// `op rd, fs1, fs2` — FP compare writing an integer register
    FCmp,
    /// `op fd, rs1` — integer to FP conversion
    FCvtToFp,
    /// `op rd, fs1` — FP to integer conversion
    FCvtToInt,
}

macro_rules! opcodes {
    ($( $variant:ident => ($mnem:literal, $fmt:ident, $fu:ident) ),+ $(,)?) => {
        /// Every operation in the ISA.
        ///
        /// See the crate docs for the overall machine model. The mnemonic,
        /// assembly [`Format`], and [`FuClass`] of each opcode are available
        /// via [`Opcode::mnemonic`], [`Opcode::format`], and
        /// [`Opcode::fu_class`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)] // the mnemonic table below documents each op
        #[repr(u8)]
        pub enum Opcode {
            $($variant),+
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),+];

            /// The assembler mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$variant => $mnem),+ }
            }

            /// The assembly/operand format.
            pub const fn format(self) -> Format {
                match self { $(Opcode::$variant => Format::$fmt),+ }
            }

            /// The functional-unit class.
            pub const fn fu_class(self) -> FuClass {
                match self { $(Opcode::$variant => FuClass::$fu),+ }
            }

            /// Looks an opcode up by mnemonic.
            pub fn from_mnemonic(m: &str) -> Option<Opcode> {
                match m { $($mnem => Some(Opcode::$variant),)+ _ => None }
            }
        }
    };
}

opcodes! {
    // Integer register-register.
    Add  => ("add",  Rrr, SimpleInt),
    Sub  => ("sub",  Rrr, SimpleInt),
    Mul  => ("mul",  Rrr, ComplexInt),
    Div  => ("div",  Rrr, ComplexInt),
    Rem  => ("rem",  Rrr, ComplexInt),
    And  => ("and",  Rrr, SimpleInt),
    Or   => ("or",   Rrr, SimpleInt),
    Xor  => ("xor",  Rrr, SimpleInt),
    Sll  => ("sll",  Rrr, SimpleInt),
    Srl  => ("srl",  Rrr, SimpleInt),
    Sra  => ("sra",  Rrr, SimpleInt),
    Slt  => ("slt",  Rrr, SimpleInt),
    Sltu => ("sltu", Rrr, SimpleInt),
    // Integer register-immediate.
    Addi => ("addi", Rri, SimpleInt),
    Andi => ("andi", Rri, SimpleInt),
    Ori  => ("ori",  Rri, SimpleInt),
    Xori => ("xori", Rri, SimpleInt),
    Slli => ("slli", Rri, SimpleInt),
    Srli => ("srli", Rri, SimpleInt),
    Srai => ("srai", Rri, SimpleInt),
    Slti => ("slti", Rri, SimpleInt),
    // Immediate load.
    Li   => ("li",   Ri, SimpleInt),
    // Integer memory.
    Ld   => ("ld", Load,  Mem),
    Lb   => ("lb", Load,  Mem),
    Sd   => ("sd", Store, Mem),
    Sb   => ("sb", Store, Mem),
    // Conditional branches.
    Beq  => ("beq",  Branch, Branch),
    Bne  => ("bne",  Branch, Branch),
    Blt  => ("blt",  Branch, Branch),
    Bge  => ("bge",  Branch, Branch),
    Bltu => ("bltu", Branch, Branch),
    Bgeu => ("bgeu", Branch, Branch),
    // Unconditional control flow.
    J    => ("j",   Jump,    Branch),
    Jal  => ("jal", Jal,     Branch),
    Jr   => ("jr",  JumpReg, Branch),
    // Floating point arithmetic.
    FAdd  => ("fadd",  Frrr, Fp),
    FSub  => ("fsub",  Frrr, Fp),
    FMul  => ("fmul",  Frrr, Fp),
    FDiv  => ("fdiv",  Frrr, Fp),
    FSqrt => ("fsqrt", Frr,  Fp),
    FMov  => ("fmov",  Frr,  Fp),
    FNeg  => ("fneg",  Frr,  Fp),
    // Floating point memory.
    Fld => ("fld", FLoad,  Mem),
    Fsd => ("fsd", FStore, Mem),
    // Floating point compares (write an integer register).
    Feq => ("feq", FCmp, Fp),
    Flt => ("flt", FCmp, Fp),
    Fle => ("fle", FCmp, Fp),
    // Conversions.
    FCvtDl => ("fcvt.d.l", FCvtToFp,  Fp),
    FCvtLd => ("fcvt.l.d", FCvtToInt, Fp),
    // Miscellaneous.
    Nop  => ("nop",  Plain, SimpleInt),
    Halt => ("halt", Plain, Branch),
}

impl Opcode {
    /// Returns `true` for memory loads (`ld`, `lb`, `fld`).
    pub const fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::Lb | Opcode::Fld)
    }

    /// Returns `true` for memory stores (`sd`, `sb`, `fsd`).
    pub const fn is_store(self) -> bool {
        matches!(self, Opcode::Sd | Opcode::Sb | Opcode::Fsd)
    }

    /// Returns `true` for any memory access.
    pub const fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for conditional branches.
    pub const fn is_cond_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }

    /// Returns `true` for any control transfer (conditional or not).
    pub const fn is_control(self) -> bool {
        self.is_cond_branch() || matches!(self, Opcode::J | Opcode::Jal | Opcode::Jr)
    }

    /// The access size in bytes for memory opcodes, 0 otherwise.
    pub const fn access_bytes(self) -> u8 {
        match self {
            Opcode::Ld | Opcode::Sd | Opcode::Fld | Opcode::Fsd => 8,
            Opcode::Lb | Opcode::Sb => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_lookup_roundtrips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::Ld.is_load());
        assert!(Opcode::Fld.is_load());
        assert!(!Opcode::Ld.is_store());
        assert!(Opcode::Sb.is_store());
        assert!(Opcode::Fsd.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn control_predicates() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(!Opcode::J.is_cond_branch());
        assert!(Opcode::J.is_control());
        assert!(Opcode::Jal.is_control());
        assert!(Opcode::Jr.is_control());
        assert!(!Opcode::Halt.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn access_sizes() {
        assert_eq!(Opcode::Ld.access_bytes(), 8);
        assert_eq!(Opcode::Lb.access_bytes(), 1);
        assert_eq!(Opcode::Fsd.access_bytes(), 8);
        assert_eq!(Opcode::Add.access_bytes(), 0);
    }

    #[test]
    fn fu_classes_match_paper_configuration() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::SimpleInt);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::ComplexInt);
        assert_eq!(Opcode::Div.fu_class(), FuClass::ComplexInt);
        assert_eq!(Opcode::FMul.fu_class(), FuClass::Fp);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::Branch);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Opcode::FCvtDl.to_string(), "fcvt.d.l");
        assert_eq!(FuClass::ComplexInt.to_string(), "complex-int");
    }
}
