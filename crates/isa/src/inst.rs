//! The instruction type and its dataflow interface.

use crate::op::{Format, Opcode};
use crate::reg::{File, Reg};
use std::fmt;

/// A reference to one architectural register: file plus index.
///
/// The timing models use `RegRef` to resolve producer→consumer edges without
/// caring which file a value lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegRef {
    /// The register file.
    pub file: File,
    /// The register within the file.
    pub reg: Reg,
}

impl RegRef {
    /// An integer-file register reference.
    pub const fn int(reg: Reg) -> RegRef {
        RegRef {
            file: File::Int,
            reg,
        }
    }

    /// A floating-point-file register reference.
    pub const fn fp(reg: Reg) -> RegRef {
        RegRef {
            file: File::Fp,
            reg,
        }
    }

    /// A dense index in `0..64` (int file first), handy for lookup tables.
    pub const fn dense_index(self) -> usize {
        match self.file {
            File::Int => self.reg.index() as usize,
            File::Fp => 32 + self.reg.index() as usize,
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.file {
            File::Int => write!(f, "{}", self.reg),
            File::Fp => write!(f, "{}", self.reg.fp_name()),
        }
    }
}

/// One machine instruction.
///
/// All opcodes share a single operand record; which fields are meaningful is
/// determined by the opcode's [`Format`]:
///
/// - `rd`: destination (integer or FP depending on opcode)
/// - `rs1`: first source / base address register
/// - `rs2`: second source / store-data register
/// - `imm`: immediate / displacement / absolute branch target (a [`crate::Pc`])
///
/// `Display` produces canonical assembly accepted by [`crate::asm`].
///
/// # Examples
///
/// ```
/// use mds_isa::{Instruction, Opcode, Reg};
/// let add = Instruction::rrr(Opcode::Add, Reg::T0, Reg::T1, Reg::T2);
/// assert_eq!(add.to_string(), "add t0, t1, t2");
/// assert!(add.writes().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub op: Opcode,
    /// Destination register (meaning depends on format).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate operand (displacement, constant, or branch target).
    pub imm: i32,
}

impl Instruction {
    /// A `nop`.
    pub const NOP: Instruction = Instruction {
        op: Opcode::Nop,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        rs2: Reg::ZERO,
        imm: 0,
    };

    /// Builds a three-register instruction (`Rrr`, `Frrr`, or `FCmp` format).
    pub const fn rrr(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Instruction {
        Instruction {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// Builds a register-register-immediate instruction.
    pub const fn rri(op: Opcode, rd: Reg, rs1: Reg, imm: i32) -> Instruction {
        Instruction {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Builds a register-immediate instruction (`li`).
    pub const fn ri(op: Opcode, rd: Reg, imm: i32) -> Instruction {
        Instruction {
            op,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm,
        }
    }

    /// Builds a load: `rd <- [rs1 + imm]`.
    pub const fn load(op: Opcode, rd: Reg, base: Reg, disp: i32) -> Instruction {
        Instruction {
            op,
            rd,
            rs1: base,
            rs2: Reg::ZERO,
            imm: disp,
        }
    }

    /// Builds a store: `[rs1 + imm] <- rs2`.
    pub const fn store(op: Opcode, src: Reg, base: Reg, disp: i32) -> Instruction {
        Instruction {
            op,
            rd: Reg::ZERO,
            rs1: base,
            rs2: src,
            imm: disp,
        }
    }

    /// Builds a conditional branch to absolute target `target`.
    pub const fn branch(op: Opcode, rs1: Reg, rs2: Reg, target: i32) -> Instruction {
        Instruction {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2,
            imm: target,
        }
    }

    /// Builds a two-operand register instruction (`Frr`, conversions, `jr`).
    pub const fn rr(op: Opcode, rd: Reg, rs1: Reg) -> Instruction {
        Instruction {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm: 0,
        }
    }

    /// The architectural register this instruction writes, if any.
    ///
    /// `r0` writes are suppressed (the zero register cannot be written).
    pub fn writes(&self) -> Option<RegRef> {
        use Format::*;
        let r = match self.op.format() {
            Rrr | Rri | Ri | Load | FCvtToInt | FCmp | Jal => RegRef::int(self.rd),
            Frrr | Frr | FLoad | FCvtToFp => RegRef::fp(self.rd),
            Store | Branch | Jump | JumpReg | Plain | FStore => return None,
        };
        if r.file == File::Int && r.reg.is_zero() {
            None
        } else {
            Some(r)
        }
    }

    /// The architectural registers this instruction reads, as up to two
    /// entries; `None` slots are unused. Reads of `r0` are suppressed (its
    /// value is constant).
    pub fn reads(&self) -> [Option<RegRef>; 2] {
        use Format::*;
        let raw: [Option<RegRef>; 2] = match self.op.format() {
            Rrr => [Some(RegRef::int(self.rs1)), Some(RegRef::int(self.rs2))],
            Rri => [Some(RegRef::int(self.rs1)), None],
            Ri => [None, None],
            Load | FLoad => [Some(RegRef::int(self.rs1)), None],
            Store => [Some(RegRef::int(self.rs1)), Some(RegRef::int(self.rs2))],
            FStore => [Some(RegRef::int(self.rs1)), Some(RegRef::fp(self.rs2))],
            Branch => [Some(RegRef::int(self.rs1)), Some(RegRef::int(self.rs2))],
            Jump | Plain | Jal => [None, None],
            JumpReg => [Some(RegRef::int(self.rs1)), None],
            Frrr => [Some(RegRef::fp(self.rs1)), Some(RegRef::fp(self.rs2))],
            Frr => [Some(RegRef::fp(self.rs1)), None],
            FCmp => [Some(RegRef::fp(self.rs1)), Some(RegRef::fp(self.rs2))],
            FCvtToFp => [Some(RegRef::int(self.rs1)), None],
            FCvtToInt => [Some(RegRef::fp(self.rs1)), None],
        };
        raw.map(|slot| slot.filter(|r| !(r.file == File::Int && r.reg.is_zero())))
    }

    /// Shorthand for `self.op.is_load()`.
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// Shorthand for `self.op.is_store()`.
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction::NOP
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Format::*;
        let m = self.op.mnemonic();
        match self.op.format() {
            Rrr => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            Rri => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            Ri => write!(f, "{m} {}, {}", self.rd, self.imm),
            Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            Store => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            Branch => write!(f, "{m} {}, {}, {}", self.rs1, self.rs2, self.imm),
            Jump => write!(f, "{m} {}", self.imm),
            Jal => write!(f, "{m} {}, {}", self.rd, self.imm),
            JumpReg => write!(f, "{m} {}", self.rs1),
            Plain => write!(f, "{m}"),
            Frrr => write!(
                f,
                "{m} {}, {}, {}",
                self.rd.fp_name(),
                self.rs1.fp_name(),
                self.rs2.fp_name()
            ),
            Frr => write!(f, "{m} {}, {}", self.rd.fp_name(), self.rs1.fp_name()),
            FLoad => write!(f, "{m} {}, {}({})", self.rd.fp_name(), self.imm, self.rs1),
            FStore => write!(f, "{m} {}, {}({})", self.rs2.fp_name(), self.imm, self.rs1),
            FCmp => write!(
                f,
                "{m} {}, {}, {}",
                self.rd,
                self.rs1.fp_name(),
                self.rs2.fp_name()
            ),
            FCvtToFp => write!(f, "{m} {}, {}", self.rd.fp_name(), self.rs1),
            FCvtToInt => write!(f, "{m} {}, {}", self.rd, self.rs1.fp_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_suppresses_zero_register() {
        let i = Instruction::rrr(Opcode::Add, Reg::ZERO, Reg::T0, Reg::T1);
        assert_eq!(i.writes(), None);
        let i = Instruction::rrr(Opcode::Add, Reg::T2, Reg::T0, Reg::T1);
        assert_eq!(i.writes(), Some(RegRef::int(Reg::T2)));
    }

    #[test]
    fn reads_suppresses_zero_register() {
        let i = Instruction::rrr(Opcode::Add, Reg::T0, Reg::ZERO, Reg::T1);
        assert_eq!(i.reads(), [None, Some(RegRef::int(Reg::T1))]);
    }

    #[test]
    fn store_reads_base_and_data() {
        let i = Instruction::store(Opcode::Sd, Reg::T0, Reg::S0, 16);
        assert_eq!(i.writes(), None);
        assert_eq!(
            i.reads(),
            [Some(RegRef::int(Reg::S0)), Some(RegRef::int(Reg::T0))]
        );
    }

    #[test]
    fn fp_store_reads_fp_data() {
        let i = Instruction::store(Opcode::Fsd, Reg::f(3), Reg::S0, 0);
        assert_eq!(
            i.reads(),
            [Some(RegRef::int(Reg::S0)), Some(RegRef::fp(Reg::f(3)))]
        );
    }

    #[test]
    fn fp_load_writes_fp_register() {
        let i = Instruction::load(Opcode::Fld, Reg::f(0), Reg::S0, 8);
        // f0 is a real FP register, not hard-wired zero.
        assert_eq!(i.writes(), Some(RegRef::fp(Reg::f(0))));
    }

    #[test]
    fn fcmp_writes_int_reads_fp() {
        let i = Instruction::rrr(Opcode::Flt, Reg::T0, Reg::f(1), Reg::f(2));
        assert_eq!(i.writes(), Some(RegRef::int(Reg::T0)));
        assert_eq!(
            i.reads(),
            [Some(RegRef::fp(Reg::f(1))), Some(RegRef::fp(Reg::f(2)))]
        );
    }

    #[test]
    fn jal_writes_link_register() {
        let i = Instruction::ri(Opcode::Jal, Reg::RA, 42);
        assert_eq!(i.writes(), Some(RegRef::int(Reg::RA)));
        assert_eq!(i.reads(), [None, None]);
    }

    #[test]
    fn display_formats_are_canonical() {
        assert_eq!(
            Instruction::rri(Opcode::Addi, Reg::T0, Reg::T1, -4).to_string(),
            "addi t0, t1, -4"
        );
        assert_eq!(
            Instruction::load(Opcode::Ld, Reg::A0, Reg::SP, 8).to_string(),
            "ld a0, 8(sp)"
        );
        assert_eq!(
            Instruction::store(Opcode::Sb, Reg::A1, Reg::S2, -1).to_string(),
            "sb a1, -1(s2)"
        );
        assert_eq!(
            Instruction::branch(Opcode::Bne, Reg::T0, Reg::ZERO, 7).to_string(),
            "bne t0, zero, 7"
        );
        assert_eq!(Instruction::NOP.to_string(), "nop");
        assert_eq!(
            Instruction::rrr(Opcode::FAdd, Reg::f(1), Reg::f(2), Reg::f(3)).to_string(),
            "fadd f1, f2, f3"
        );
        assert_eq!(
            Instruction::rr(Opcode::FCvtDl, Reg::f(0), Reg::A0).to_string(),
            "fcvt.d.l f0, a0"
        );
    }

    #[test]
    fn dense_index_distinguishes_files() {
        assert_eq!(RegRef::int(Reg::x(5)).dense_index(), 5);
        assert_eq!(RegRef::fp(Reg::f(5)).dense_index(), 37);
    }
}
