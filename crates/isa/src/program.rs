//! The program model: code, initialized data, symbols, and task annotations.

use crate::inst::Instruction;
use crate::op::FuClass;
use crate::{Addr, Pc};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Static instruction mix of a [`Program`], by functional-unit class.
///
/// # Examples
///
/// ```
/// use mds_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.alloc("x", 1);
/// b.la(Reg::S0, "x");
/// b.ld(Reg::T0, Reg::S0, 0);
/// b.mul(Reg::T0, Reg::T0, Reg::T0);
/// b.halt();
/// let mix = b.build()?.instruction_mix();
/// assert_eq!(mix.mem, 1);
/// assert_eq!(mix.complex_int, 1);
/// assert_eq!(mix.total(), 4); // la, ld, mul, halt
/// # Ok::<(), mds_isa::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// Simple integer ALU operations.
    pub simple_int: usize,
    /// Multiply/divide/remainder.
    pub complex_int: usize,
    /// Floating-point operations.
    pub fp: usize,
    /// Loads and stores.
    pub mem: usize,
    /// Control transfers (including `halt`).
    pub branch: usize,
}

impl InstructionMix {
    /// Total static instructions counted.
    pub fn total(&self) -> usize {
        self.simple_int + self.complex_int + self.fp + self.mem + self.branch
    }

    /// Fraction of memory operations, in `[0, 1]`.
    pub fn mem_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.mem as f64 / self.total() as f64
        }
    }
}

/// Base byte address of the data segment.
pub const DATA_BASE: Addr = 0x1000_0000;

/// Initial stack pointer; the stack grows toward lower addresses.
pub const STACK_BASE: Addr = 0x7fff_f000;

/// A complete executable program.
///
/// A `Program` is code (a vector of [`Instruction`]s indexed by PC),
/// initialized data words, a symbol table for the data segment, and the set
/// of **task head** PCs — the Multiscalar task annotations that the
/// emulator turns into task-boundary events.
///
/// Programs are built with [`crate::ProgramBuilder`] or parsed from text by
/// [`crate::asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Instruction>,
    data: BTreeMap<Addr, u64>,
    symbols: BTreeMap<String, Addr>,
    task_heads: BTreeSet<Pc>,
    entry: Pc,
}

impl Program {
    pub(crate) fn from_parts(
        insts: Vec<Instruction>,
        data: BTreeMap<Addr, u64>,
        symbols: BTreeMap<String, Addr>,
        task_heads: BTreeSet<Pc>,
        entry: Pc,
    ) -> Program {
        Program {
            insts,
            data,
            symbols,
            task_heads,
            entry,
        }
    }

    /// The instruction at `pc`, or `None` past the end of the program.
    pub fn fetch(&self, pc: Pc) -> Option<&Instruction> {
        self.insts.get(pc as usize)
    }

    /// All instructions, indexed by PC.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry PC (0 unless the builder set one).
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Initialized data words as `(address, value)` pairs in address order.
    pub fn initial_data(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.data.iter().map(|(&a, &v)| (a, v))
    }

    /// Looks up a data-segment symbol.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// All data-segment symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Addr)> + '_ {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Returns `true` when `pc` is annotated as the start of a Multiscalar
    /// task.
    pub fn is_task_head(&self, pc: Pc) -> bool {
        self.task_heads.contains(&pc)
    }

    /// The set of task-head PCs.
    pub fn task_heads(&self) -> impl Iterator<Item = Pc> + '_ {
        self.task_heads.iter().copied()
    }

    /// Number of annotated task heads.
    pub fn task_head_count(&self) -> usize {
        self.task_heads.len()
    }

    /// Counts static instructions by functional-unit class.
    pub fn instruction_mix(&self) -> InstructionMix {
        let mut mix = InstructionMix::default();
        for inst in &self.insts {
            match inst.op.fu_class() {
                FuClass::SimpleInt => mix.simple_int += 1,
                FuClass::ComplexInt => mix.complex_int += 1,
                FuClass::Fp => mix.fp += 1,
                FuClass::Mem => mix.mem += 1,
                FuClass::Branch => mix.branch += 1,
            }
        }
        mix
    }

    /// Renders the whole program as assembly text that [`crate::asm::assemble`]
    /// accepts, including task annotations and data directives.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (name, addr) in &self.symbols {
            out.push_str(&format!(".sym {name} {addr:#x}\n"));
        }
        for (&addr, &value) in &self.data {
            out.push_str(&format!(".word {addr:#x} {value}\n"));
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            if self.task_heads.contains(&(pc as Pc)) {
                out.push_str(".task\n");
            }
            out.push_str(&format!("{inst}\n"));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::Reg;

    fn tiny() -> Program {
        let insts = vec![
            Instruction::ri(Opcode::Li, Reg::T0, 1),
            Instruction::NOP,
            Instruction {
                op: Opcode::Halt,
                ..Instruction::NOP
            },
        ];
        let mut data = BTreeMap::new();
        data.insert(DATA_BASE, 99);
        let mut symbols = BTreeMap::new();
        symbols.insert("tbl".to_string(), DATA_BASE);
        let mut heads = BTreeSet::new();
        heads.insert(0);
        heads.insert(2);
        Program::from_parts(insts, data, symbols, heads, 0)
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny();
        assert_eq!(p.fetch(0).unwrap().op, Opcode::Li);
        assert!(p.fetch(3).is_none());
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn task_heads_are_queryable() {
        let p = tiny();
        assert!(p.is_task_head(0));
        assert!(!p.is_task_head(1));
        assert!(p.is_task_head(2));
        assert_eq!(p.task_head_count(), 2);
        assert_eq!(p.task_heads().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn symbols_and_data() {
        let p = tiny();
        assert_eq!(p.symbol("tbl"), Some(DATA_BASE));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.initial_data().collect::<Vec<_>>(), vec![(DATA_BASE, 99)]);
    }

    #[test]
    fn instruction_mix_counts_classes() {
        let mix = tiny().instruction_mix();
        assert_eq!(mix.simple_int, 2); // li + nop
        assert_eq!(mix.branch, 1); // halt
        assert_eq!(mix.total(), 3);
        assert_eq!(mix.mem_fraction(), 0.0);
    }

    #[test]
    fn disassemble_includes_annotations() {
        let text = tiny().disassemble();
        assert!(text.contains(".task"));
        assert!(text.contains(".sym tbl"));
        assert!(text.contains(".word"));
        assert!(text.contains("halt"));
    }
}
