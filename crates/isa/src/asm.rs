//! A text assembler for the ISA.
//!
//! The grammar is exactly what [`crate::Program::disassemble`] emits, plus a
//! few human conveniences, so assembly text round-trips:
//!
//! ```text
//! # comment                  ; also a comment
//! .sym  name 0x10000000      # bind a data symbol to an address
//! .word 0x10000008 42        # initialize a data word
//! .data name 4 [1 2 3 4]     # bump-allocate, with optional init values
//! .task                      # next instruction starts a Multiscalar task
//! loop:                      # label (may precede an instruction inline)
//!   ld   t0, 0(s0)
//!   addi t0, t0, 1
//!   sd   t0, 0(s0)
//!   bne  s1, zero, loop      # branch targets: label or absolute pc
//!   li   a0, %name           # %name expands to the symbol's address
//!   halt
//! ```
//!
//! # Examples
//!
//! ```
//! let p = mds_isa::asm::assemble("li a0, 5\nhalt\n")?;
//! assert_eq!(p.len(), 2);
//! # Ok::<(), mds_isa::asm::AsmError>(())
//! ```

use crate::builder::{ProgramBuilder, Target};
use crate::inst::Instruction;
use crate::op::{Format, Opcode};
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// An assembly error, tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The varieties of assembly error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown instruction mnemonic.
    UnknownMnemonic(String),
    /// Malformed operand text.
    BadOperand(String),
    /// Wrong number of operands for the mnemonic's format.
    OperandCount {
        /// Operand count the format requires.
        expected: usize,
        /// Operand count actually present.
        found: usize,
    },
    /// Unknown register name.
    BadRegister(String),
    /// Malformed directive.
    BadDirective(String),
    /// Reference to an undefined data symbol via `%name`.
    UnknownSymbol(String),
    /// Error reported by the underlying builder (labels, symbols).
    Build(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand `{o}`"),
            AsmErrorKind::OperandCount { expected, found } => {
                write!(f, "expected {expected} operands, found {found}")
            }
            AsmErrorKind::BadRegister(r) => write!(f, "bad register `{r}`"),
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive `{d}`"),
            AsmErrorKind::UnknownSymbol(s) => write!(f, "unknown data symbol `%{s}`"),
            AsmErrorKind::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Assembles a complete program from text.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, tagged with its line
/// number. Numeric control-flow targets are validated against the
/// program's length (label targets are correct by construction).
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        parse_line(&mut b, raw, line)?;
    }
    let program = b.build().map_err(|e| AsmError {
        line: 0,
        kind: AsmErrorKind::Build(e.to_string()),
    })?;
    for inst in program.instructions() {
        if inst.op.is_control() && inst.op != crate::op::Opcode::Jr {
            let target = inst.imm as i64;
            if target < 0 || target as usize >= program.len() {
                return Err(AsmError {
                    line: 0,
                    kind: AsmErrorKind::Build(format!(
                        "control target {target} outside program of {} instructions",
                        program.len()
                    )),
                });
            }
        }
    }
    Ok(program)
}

fn parse_line(b: &mut ProgramBuilder, raw: &str, line: usize) -> Result<(), AsmError> {
    let err = |kind| AsmError { line, kind };
    // Strip comments.
    let code = raw.split(['#', ';']).next().unwrap_or("").trim();
    if code.is_empty() {
        return Ok(());
    }
    // Labels: `name:` possibly followed by more on the same line.
    if let Some(colon) = code.find(':') {
        let (label, rest) = code.split_at(colon);
        let label = label.trim();
        if !label.is_empty()
            && label
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        {
            b.label(label);
            return parse_line(b, &rest[1..], line);
        }
    }
    if let Some(directive) = code.strip_prefix('.') {
        return parse_directive(b, directive, line);
    }
    // Instruction: mnemonic then comma-separated operands.
    let (mnem, rest) = match code.find(char::is_whitespace) {
        Some(ws) => code.split_at(ws),
        None => (code, ""),
    };
    let op = Opcode::from_mnemonic(mnem)
        .ok_or_else(|| err(AsmErrorKind::UnknownMnemonic(mnem.to_string())))?;
    let operands: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let inst = parse_operands(b, op, &operands, line)?;
    match inst {
        Parsed::Plain(i) => {
            b.emit(i);
        }
        Parsed::WithTarget(i, t) => {
            // Re-emit through the builder so labels get fixed up.
            emit_with_target(b, i, t);
        }
    }
    Ok(())
}

enum Parsed {
    Plain(Instruction),
    WithTarget(Instruction, Target),
}

fn emit_with_target(b: &mut ProgramBuilder, inst: Instruction, target: Target) {
    match target {
        Target::Pc(pc) => {
            let mut i = inst;
            i.imm = pc as i32;
            b.emit(i);
        }
        Target::Label(_) => match inst.op {
            Opcode::J => {
                b.j(target);
            }
            Opcode::Jal => {
                b.jal(inst.rd, target);
            }
            _ => {
                // Conditional branch.
                match inst.op {
                    Opcode::Beq => b.beq(inst.rs1, inst.rs2, target),
                    Opcode::Bne => b.bne(inst.rs1, inst.rs2, target),
                    Opcode::Blt => b.blt(inst.rs1, inst.rs2, target),
                    Opcode::Bge => b.bge(inst.rs1, inst.rs2, target),
                    Opcode::Bltu => b.bltu(inst.rs1, inst.rs2, target),
                    Opcode::Bgeu => b.bgeu(inst.rs1, inst.rs2, target),
                    _ => unreachable!("only control ops carry targets"),
                };
            }
        },
    }
}

fn parse_directive(b: &mut ProgramBuilder, d: &str, line: usize) -> Result<(), AsmError> {
    let err = |kind| AsmError { line, kind };
    let parts: Vec<&str> = d.split_whitespace().collect();
    match parts.first().copied() {
        Some("task") => {
            b.task();
            Ok(())
        }
        Some("sym") => {
            let [_, name, addr] = parts[..] else {
                return Err(err(AsmErrorKind::BadDirective(d.to_string())));
            };
            let addr =
                parse_u64(addr).ok_or_else(|| err(AsmErrorKind::BadOperand(addr.to_string())))?;
            b.define_symbol(name, addr);
            Ok(())
        }
        Some("word") => {
            let [_, addr, value] = parts[..] else {
                return Err(err(AsmErrorKind::BadDirective(d.to_string())));
            };
            let addr =
                parse_u64(addr).ok_or_else(|| err(AsmErrorKind::BadOperand(addr.to_string())))?;
            let value =
                parse_u64(value).ok_or_else(|| err(AsmErrorKind::BadOperand(value.to_string())))?;
            b.init_word(addr, value);
            Ok(())
        }
        Some("data") => {
            if parts.len() < 3 {
                return Err(err(AsmErrorKind::BadDirective(d.to_string())));
            }
            let name = parts[1];
            let count: usize = parts[2]
                .parse()
                .map_err(|_| err(AsmErrorKind::BadOperand(parts[2].to_string())))?;
            let base = b.alloc(name, count);
            for (i, v) in parts[3..].iter().enumerate() {
                let value =
                    parse_u64(v).ok_or_else(|| err(AsmErrorKind::BadOperand(v.to_string())))?;
                b.init_word(base + (i as u64) * 8, value);
            }
            Ok(())
        }
        _ => Err(err(AsmErrorKind::BadDirective(d.to_string()))),
    }
}

fn parse_operands(
    b: &ProgramBuilder,
    op: Opcode,
    ops: &[&str],
    line: usize,
) -> Result<Parsed, AsmError> {
    let err = |kind| AsmError { line, kind };
    let need = |n: usize| {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(AsmErrorKind::OperandCount {
                expected: n,
                found: ops.len(),
            }))
        }
    };
    let int_reg =
        |s: &str| Reg::parse(s).ok_or_else(|| err(AsmErrorKind::BadRegister(s.to_string())));
    let fp_reg =
        |s: &str| Reg::parse_fp(s).ok_or_else(|| err(AsmErrorKind::BadRegister(s.to_string())));
    let imm = |s: &str| -> Result<i32, AsmError> {
        if let Some(sym) = s.strip_prefix('%') {
            let addr = b
                .symbol(sym)
                .ok_or_else(|| err(AsmErrorKind::UnknownSymbol(sym.to_string())))?;
            return Ok(addr as i32);
        }
        parse_i64(s)
            .map(|v| v as i32)
            .ok_or_else(|| err(AsmErrorKind::BadOperand(s.to_string())))
    };
    // `imm(reg)` address operand.
    let mem = |s: &str| -> Result<(i32, Reg), AsmError> {
        let open = s
            .find('(')
            .ok_or_else(|| err(AsmErrorKind::BadOperand(s.to_string())))?;
        let close = s
            .rfind(')')
            .ok_or_else(|| err(AsmErrorKind::BadOperand(s.to_string())))?;
        let disp_text = s[..open].trim();
        let disp = if disp_text.is_empty() {
            0
        } else {
            imm(disp_text)?
        };
        let base = int_reg(s[open + 1..close].trim())?;
        Ok((disp, base))
    };
    let target = |s: &str| -> Target {
        match parse_i64(s) {
            Some(v) => Target::Pc(v as u32),
            None => Target::Label(s.to_string()),
        }
    };

    use Format::*;
    let parsed = match op.format() {
        Rrr => {
            need(3)?;
            Parsed::Plain(Instruction::rrr(
                op,
                int_reg(ops[0])?,
                int_reg(ops[1])?,
                int_reg(ops[2])?,
            ))
        }
        Rri => {
            need(3)?;
            Parsed::Plain(Instruction::rri(
                op,
                int_reg(ops[0])?,
                int_reg(ops[1])?,
                imm(ops[2])?,
            ))
        }
        Ri => {
            need(2)?;
            Parsed::Plain(Instruction::ri(op, int_reg(ops[0])?, imm(ops[1])?))
        }
        Load => {
            need(2)?;
            let (disp, base) = mem(ops[1])?;
            Parsed::Plain(Instruction::load(op, int_reg(ops[0])?, base, disp))
        }
        Store => {
            need(2)?;
            let (disp, base) = mem(ops[1])?;
            Parsed::Plain(Instruction::store(op, int_reg(ops[0])?, base, disp))
        }
        Branch => {
            need(3)?;
            Parsed::WithTarget(
                Instruction::branch(op, int_reg(ops[0])?, int_reg(ops[1])?, 0),
                target(ops[2]),
            )
        }
        Jump => {
            need(1)?;
            Parsed::WithTarget(
                Instruction {
                    op,
                    ..Instruction::NOP
                },
                target(ops[0]),
            )
        }
        Jal => {
            need(2)?;
            Parsed::WithTarget(
                Instruction {
                    op,
                    rd: int_reg(ops[0])?,
                    ..Instruction::NOP
                },
                target(ops[1]),
            )
        }
        JumpReg => {
            need(1)?;
            Parsed::Plain(Instruction {
                op,
                rs1: int_reg(ops[0])?,
                ..Instruction::NOP
            })
        }
        Plain => {
            need(0)?;
            Parsed::Plain(Instruction {
                op,
                ..Instruction::NOP
            })
        }
        Frrr => {
            need(3)?;
            Parsed::Plain(Instruction::rrr(
                op,
                fp_reg(ops[0])?,
                fp_reg(ops[1])?,
                fp_reg(ops[2])?,
            ))
        }
        Frr => {
            need(2)?;
            Parsed::Plain(Instruction::rr(op, fp_reg(ops[0])?, fp_reg(ops[1])?))
        }
        FLoad => {
            need(2)?;
            let (disp, base) = mem(ops[1])?;
            Parsed::Plain(Instruction::load(op, fp_reg(ops[0])?, base, disp))
        }
        FStore => {
            need(2)?;
            let (disp, base) = mem(ops[1])?;
            Parsed::Plain(Instruction::store(op, fp_reg(ops[0])?, base, disp))
        }
        FCmp => {
            need(3)?;
            Parsed::Plain(Instruction::rrr(
                op,
                int_reg(ops[0])?,
                fp_reg(ops[1])?,
                fp_reg(ops[2])?,
            ))
        }
        FCvtToFp => {
            need(2)?;
            Parsed::Plain(Instruction::rr(op, fp_reg(ops[0])?, int_reg(ops[1])?))
        }
        FCvtToInt => {
            need(2)?;
            Parsed::Plain(Instruction::rr(op, int_reg(ops[0])?, fp_reg(ops[1])?))
        }
    };
    Ok(parsed)
}

fn parse_i64(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::DATA_BASE;

    #[test]
    fn assembles_the_module_example() {
        let text = "
            .data counter 1 7
            loop:
              ld   t0, 0(s0)
              addi t0, t0, 1
              sd   t0, 0(s0)
              bne  s1, zero, loop
              li   a0, %counter
              halt
        ";
        let p = assemble(text).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.symbol("counter"), Some(DATA_BASE));
        assert_eq!(p.initial_data().next(), Some((DATA_BASE, 7)));
        assert_eq!(p.fetch(3).unwrap().imm, 0); // branch back to loop
        assert_eq!(p.fetch(4).unwrap().imm, DATA_BASE as i32);
    }

    #[test]
    fn label_and_instruction_share_a_line() {
        let p = assemble("start: nop\nj start\nhalt\n").unwrap();
        assert_eq!(p.fetch(1).unwrap().imm, 0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n\n  ; note\nnop # trailing\nhalt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(ref m) if m == "frobnicate"));
    }

    #[test]
    fn operand_count_mismatch() {
        let e = assemble("add t0, t1\n").unwrap_err();
        assert_eq!(
            e.kind,
            AsmErrorKind::OperandCount {
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn bad_register_reported() {
        let e = assemble("add t0, t1, bogus\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadRegister(ref r) if r == "bogus"));
    }

    #[test]
    fn unknown_symbol_reported() {
        let e = assemble("li t0, %ghost\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownSymbol(ref s) if s == "ghost"));
    }

    #[test]
    fn numeric_branch_targets_accepted() {
        let p = assemble("beq t0, t1, 0\nhalt\n").unwrap();
        assert_eq!(p.fetch(0).unwrap().imm, 0);
    }

    #[test]
    fn wild_numeric_branch_targets_rejected() {
        let e = assemble("beq t0, t1, 99\nhalt\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Build(ref m) if m.contains("outside program")));
        let e = assemble("j 1000\nhalt\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Build(_)));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("li t0, 0x10\naddi t0, t0, -3\nhalt\n").unwrap();
        assert_eq!(p.fetch(0).unwrap().imm, 16);
        assert_eq!(p.fetch(1).unwrap().imm, -3);
    }

    #[test]
    fn fp_instructions_parse() {
        let text = "
            fld f1, 0(s0)
            fadd f2, f1, f1
            fsqrt f3, f2
            feq t0, f2, f3
            fcvt.l.d a0, f3
            fcvt.d.l f4, a0
            fsd f4, 8(s0)
            halt
        ";
        let p = assemble(text).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.fetch(1).unwrap().op, Opcode::FAdd);
    }

    #[test]
    fn task_directive_marks_instruction() {
        let p = assemble(".task\nnop\nhalt\n").unwrap();
        assert!(p.is_task_head(0));
        assert!(!p.is_task_head(1));
    }

    #[test]
    fn disassemble_reassemble_roundtrip() {
        let mut b = ProgramBuilder::new();
        let t = b.alloc_init("tbl", &[5, 0, 6]);
        b.li(Reg::S0, t as i32);
        b.task();
        b.label("top");
        b.ld(Reg::T0, Reg::S0, 0);
        b.fld(Reg::f(1), Reg::S0, 8);
        b.fadd(Reg::f(2), Reg::f(1), Reg::f(1));
        b.fsd(Reg::f(2), Reg::S0, 16);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "top");
        b.call(3u32);
        b.halt();
        let p = b.build().unwrap();
        let p2 = assemble(&p.disassemble()).unwrap();
        assert_eq!(p.instructions(), p2.instructions());
        assert_eq!(
            p.task_heads().collect::<Vec<_>>(),
            p2.task_heads().collect::<Vec<_>>()
        );
        assert_eq!(
            p.initial_data().collect::<Vec<_>>(),
            p2.initial_data().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bad_directive_reported() {
        let e = assemble(".frob x\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadDirective(_)));
    }

    #[test]
    fn duplicate_label_surfaces_as_build_error() {
        let e = assemble("x: nop\nx: halt\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Build(_)));
    }
}
