//! A small 64-bit RISC instruction set used by the `mds` suite.
//!
//! The ISA exists so the workspace can *execute real programs* rather than
//! replay canned traces: the synthetic workloads in `mds-workloads` are
//! written against this instruction set, run on the functional emulator in
//! `mds-emu`, and the resulting committed instruction streams drive both the
//! sliding-window dependence analyzer (`mds-ooo`) and the Multiscalar timing
//! model (`mds-multiscalar`).
//!
//! Design points:
//!
//! - **Program counters are instruction indices.** `pc + 1` is the next
//!   instruction; branch targets are absolute indices. This keeps the
//!   dependence machinery (which keys on instruction PCs) simple without
//!   losing anything the paper needs.
//! - **Two register files** of 32 registers each: integer `r0..r31`
//!   (`r0` is hard-wired zero) and floating point `f0..f31`.
//! - **Byte-addressed memory** with 8-byte word loads/stores (`ld`/`sd`)
//!   and byte accesses (`lb`/`sb`). The data segment starts at
//!   [`DATA_BASE`]; the stack grows down from [`STACK_BASE`].
//! - **Task annotations.** A [`Program`] carries the set of PCs that begin
//!   Multiscalar tasks; the emulator emits task boundaries when crossing
//!   them. This mirrors the task-annotated binaries produced by the
//!   Multiscalar compiler in the paper.
//!
//! # Examples
//!
//! Build, disassemble and reassemble a two-instruction program:
//!
//! ```
//! use mds_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::T0, 41);
//! b.addi(Reg::T0, Reg::T0, 1);
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.len(), 3);
//!
//! let text = program.disassemble();
//! let reparsed = mds_isa::asm::assemble(&text)?;
//! assert_eq!(program.instructions(), reparsed.instructions());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod encode;
pub mod inst;
pub mod op;
pub mod program;
pub mod reg;

pub use builder::{BuildError, ProgramBuilder};
pub use encode::{decode, encode, DecodeError};
pub use inst::{Instruction, RegRef};
pub use op::{FuClass, Opcode};
pub use program::{InstructionMix, Program, DATA_BASE, STACK_BASE};
pub use reg::{File, Reg};

/// A program counter: the index of an instruction within a [`Program`].
pub type Pc = u32;

/// A byte address in the emulated data memory.
pub type Addr = u64;
