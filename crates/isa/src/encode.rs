//! Fixed-width binary instruction encoding.
//!
//! Instructions encode into a single little-endian `u64` word:
//!
//! ```text
//!  63      32 31    24 23    16 15     8 7      0
//! +----------+--------+--------+--------+--------+
//! |   imm    |  rs2   |  rs1   |   rd   | opcode |
//! +----------+--------+--------+--------+--------+
//! ```
//!
//! The encoding is used by tests, the assembler's object output, and anyone
//! who wants to persist programs compactly. [`encode`] and [`decode`] are
//! exact inverses for every well-formed instruction (checked by property
//! tests).

use crate::inst::Instruction;
use crate::op::Opcode;
use crate::reg::Reg;
use std::fmt;

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name a valid opcode.
    BadOpcode(u8),
    /// A register field exceeds 31.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "register field {b} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into its 64-bit binary form.
///
/// # Examples
///
/// ```
/// use mds_isa::{encode, decode, Instruction, Opcode, Reg};
/// let i = Instruction::rri(Opcode::Addi, Reg::T0, Reg::T1, -7);
/// assert_eq!(decode(encode(&i))?, i);
/// # Ok::<(), mds_isa::DecodeError>(())
/// ```
pub fn encode(inst: &Instruction) -> u64 {
    (inst.op as u8 as u64)
        | ((inst.rd.index() as u64) << 8)
        | ((inst.rs1.index() as u64) << 16)
        | ((inst.rs2.index() as u64) << 24)
        | ((inst.imm as u32 as u64) << 32)
}

/// Decodes a 64-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode byte or a register field is out
/// of range.
pub fn decode(word: u64) -> Result<Instruction, DecodeError> {
    let op_byte = (word & 0xff) as u8;
    let op = opcode_from_byte(op_byte).ok_or(DecodeError::BadOpcode(op_byte))?;
    let rd = reg_from_byte((word >> 8) as u8)?;
    let rs1 = reg_from_byte((word >> 16) as u8)?;
    let rs2 = reg_from_byte((word >> 24) as u8)?;
    let imm = (word >> 32) as u32 as i32;
    Ok(Instruction {
        op,
        rd,
        rs1,
        rs2,
        imm,
    })
}

fn opcode_from_byte(b: u8) -> Option<Opcode> {
    Opcode::ALL.get(b as usize).copied()
}

fn reg_from_byte(b: u8) -> Result<Reg, DecodeError> {
    if b < 32 {
        Ok(Reg::x(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use mds_harness::prelude::*;

    #[test]
    fn opcode_discriminants_are_dense() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op as usize, i, "{op:?} has non-dense discriminant");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let word = 0xffu64;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn decode_rejects_bad_register() {
        // opcode 0 (add) with rd = 40
        let word = (40u64) << 8;
        assert_eq!(decode(word), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(DecodeError::BadOpcode(0xff).to_string().contains("0xff"));
        assert!(DecodeError::BadRegister(40).to_string().contains("40"));
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        (
            0..Opcode::ALL.len(),
            0u8..32,
            0u8..32,
            0u8..32,
            any::<i32>(),
        )
            .prop_map(|(op, rd, rs1, rs2, imm)| Instruction {
                op: Opcode::ALL[op],
                rd: Reg::x(rd),
                rs1: Reg::x(rs1),
                rs2: Reg::x(rs2),
                imm,
            })
    }

    properties! {
        #[test]
        fn encode_decode_roundtrip(inst in arb_instruction()) {
            let word = encode(&inst);
            prop_assert_eq!(decode(word).unwrap(), inst);
        }

        #[test]
        fn encoding_is_injective(a in arb_instruction(), b in arb_instruction()) {
            if a != b {
                prop_assert_ne!(encode(&a), encode(&b));
            }
        }
    }
}
