//! The SPECfp95-substitute suite: tomcatv, swim, su2cor, hydro2d, mgrid,
//! applu, turb3d, fpppp, apsi, wave5 (the paper's figure 7, FP half).

use crate::util::{loop_epilogue, xorshift};
use crate::{Builder, Scale, Suite, Workload};
use mds_harness::rng::Rng;
use mds_isa::{Program, ProgramBuilder, Reg};

/// The ten SPECfp95 workloads in the paper's order.
pub const WORKLOADS: [Workload; 10] = [
    Workload {
        name: "tomcatv",
        suite: Suite::Spec95Fp,
        description: "mesh generation: relaxation sweeps with loop-carried recurrences",
        phenotype: "a distance-1 FP recurrence through memory — exactly what the \
                        synchronization mechanism captures (near-ideal gains)",
        builder: Builder::Static(tomcatv),
    },
    Workload {
        name: "swim",
        suite: Suite::Spec95Fp,
        description: "shallow-water model: wide array sweeps",
        phenotype: "pure streaming with no cross-task dependences; the memory system \
                        saturates and dependence speculation has nothing to gain",
        builder: Builder::Static(swim),
    },
    Workload {
        name: "su2cor",
        suite: Suite::Spec95Fp,
        description: "quantum physics: large lattice updates in very large tasks",
        phenotype: "a dependence working set larger than the MDPT inside big tasks — \
                        the mechanism falls short of ideal",
        builder: Builder::Static(su2cor),
    },
    Workload {
        name: "hydro2d",
        suite: Suite::Spec95Fp,
        description: "hydrodynamics: stencil reads into private rows",
        phenotype: "read-mostly tasks with rare shared writes — little to gain",
        builder: Builder::Static(hydro2d),
    },
    Workload {
        name: "mgrid",
        suite: Suite::Spec95Fp,
        description: "multigrid solver: 3D gather sweeps",
        phenotype: "bus-bound gathers; another saturated configuration",
        builder: Builder::Static(mgrid),
    },
    Workload {
        name: "applu",
        suite: Suite::Spec95Fp,
        description: "SSOR solver: blocked forward substitution",
        phenotype: "short-distance FP recurrences (with divides) captured nearly \
                        perfectly",
        builder: Builder::Static(applu),
    },
    Workload {
        name: "turb3d",
        suite: Suite::Spec95Fp,
        description: "turbulence: FFT-style butterflies on private buffers",
        phenotype: "independent compute-heavy tasks; FP units saturate",
        builder: Builder::Static(turb3d),
    },
    Workload {
        name: "fpppp",
        suite: Suite::Spec95Fp,
        description: "quantum chemistry: enormous (~800-instruction) tasks",
        phenotype: "a dense wavefront of fixed-distance dependences inside huge tasks: \
                        every mis-speculation costs ~800 instructions, so synchronization \
                        delivers the suite's largest win",
        builder: Builder::Static(fpppp),
    },
    Workload {
        name: "apsi",
        suite: Suite::Spec95Fp,
        description: "mesoscale weather: mixed recurrences",
        phenotype: "half the tasks carry a distance-2 FP recurrence, half are \
                        independent — moderate gains",
        builder: Builder::Static(apsi),
    },
    Workload {
        name: "wave5",
        suite: Suite::Spec95Fp,
        description: "plasma simulation: particle scatter/gather updates",
        phenotype: "pseudo-random particle collisions produce medium-frequency, \
                        medium-locality dependences",
        builder: Builder::Static(wave5),
    },
];

fn alloc_fp(b: &mut ProgramBuilder, name: &str, words: usize, seed: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let values: Vec<u64> = (0..words)
        .map(|_| f64::to_bits(rng.gen_range(0.5..2.0)))
        .collect();
    b.alloc_init(name, &values)
}

/// Relaxation sweep: task k computes `a[k] = 0.25*(a[k-1] + 2*a[k-1])`
/// style smoothing over a ring, where `a[k-1]` was produced by the
/// previous task — the canonical captured recurrence.
pub fn tomcatv(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "mesh", 1024, 0x70);
    b.la(Reg::S0, "mesh");
    b.li(Reg::A4, 1); // element index
    b.li(Reg::T0, scale.iterations(20_000));
    b.label("task");
    b.task();
    // prev = mesh[(i-1) & 1023] (written by the previous task)
    b.addi(Reg::T1, Reg::A4, -1);
    b.andi(Reg::T1, Reg::T1, 1023);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.fld(Reg::f(1), Reg::T1, 0);
    b.fadd(Reg::f(2), Reg::f(1), Reg::f(1));
    b.fadd(Reg::f(2), Reg::f(2), Reg::f(1));
    b.fmul(Reg::f(3), Reg::f(2), Reg::f(1));
    b.fadd(Reg::f(3), Reg::f(3), Reg::f(1));
    b.andi(Reg::T2, Reg::A4, 1023);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S0, Reg::T2);
    b.fsd(Reg::f(3), Reg::T2, 0);
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("tomcatv workload builds")
}

/// Streaming sweep: each task reads 8 elements of one array, adds a
/// constant field, and writes 8 elements of a disjoint array. No
/// cross-task dependences; the bus is the bottleneck.
pub fn swim(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "u", 4096, 0x51);
    b.alloc("v", 4096);
    b.la(Reg::S0, "u");
    b.la(Reg::S1, "v");
    b.li(Reg::A4, 0); // strip index
    b.li(Reg::T0, scale.iterations(10_000));
    b.label("task");
    b.task();
    b.andi(Reg::T1, Reg::A4, 511);
    b.slli(Reg::T1, Reg::T1, 6);
    b.add(Reg::T2, Reg::S0, Reg::T1);
    b.add(Reg::T3, Reg::S1, Reg::T1);
    for i in 0..8 {
        b.fld(Reg::f(1), Reg::T2, i * 8);
        b.fadd(Reg::f(2), Reg::f(1), Reg::f(1));
        b.fsd(Reg::f(2), Reg::T3, i * 8);
    }
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("swim workload builds")
}

/// Lattice updates in large tasks: each task read-modify-writes 12
/// pseudo-random lattice sites through 12 *distinct static code paths*
/// (unrolled), so the dynamic dependence working set (~144 edges) exceeds
/// a 64-entry MDPT.
pub fn su2cor(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "lattice", 512, 0x52);
    b.la(Reg::S0, "lattice");
    b.li(Reg::S5, crate::util::HASH_K);
    b.li(Reg::A6, 0x152); // task counter (offset by a seed)
    b.li(Reg::T0, scale.iterations(3_000));
    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    crate::util::task_hash(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    for site in 0..12 {
        // Each unrolled site update is its own static load/store pair.
        xorshift(&mut b, Reg::A7, Reg::T1);
        b.srli(Reg::T2, Reg::A7, 5);
        b.andi(Reg::T2, Reg::T2, 511);
        b.slli(Reg::T2, Reg::T2, 3);
        b.add(Reg::T2, Reg::S0, Reg::T2);
        b.fld(Reg::f(1), Reg::T2, 0);
        match site % 3 {
            0 => b.fadd(Reg::f(2), Reg::f(1), Reg::f(1)),
            1 => b.fmul(Reg::f(2), Reg::f(1), Reg::f(1)),
            _ => b.fsub(Reg::f(2), Reg::f(1), Reg::f(0)),
        };
        b.fsd(Reg::f(2), Reg::T2, 0);
    }
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("su2cor workload builds")
}

/// Stencil reads into a private output row; only one shared write per 32
/// tasks.
pub fn hydro2d(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "grid", 2048, 0x42);
    b.alloc("row", 64);
    b.alloc("hglobals", 1);
    b.la(Reg::S0, "grid");
    b.la(Reg::S1, "row");
    b.la(Reg::S2, "hglobals");
    b.li(Reg::A4, 0);
    b.li(Reg::T0, scale.iterations(10_000));
    b.label("task");
    b.task();
    b.andi(Reg::T1, Reg::A4, 2040);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.fld(Reg::f(1), Reg::T1, 0);
    b.fld(Reg::f(2), Reg::T1, 8);
    b.fld(Reg::f(3), Reg::T1, 16);
    b.fadd(Reg::f(4), Reg::f(1), Reg::f(2));
    b.fadd(Reg::f(4), Reg::f(4), Reg::f(3));
    b.andi(Reg::T2, Reg::A4, 63);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.fsd(Reg::f(4), Reg::T2, 0);
    b.addi(Reg::A4, Reg::A4, 1);
    b.andi(Reg::T3, Reg::A4, 31);
    b.bne(Reg::T3, Reg::ZERO, "no_share");
    b.fld(Reg::f(5), Reg::S2, 0);
    b.fadd(Reg::f(5), Reg::f(5), Reg::f(4));
    b.fsd(Reg::f(5), Reg::S2, 0);
    b.label("no_share");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("hydro2d workload builds")
}

/// 3D-style gather: each task reads 16 spread-out elements (guaranteed
/// cache misses) and writes one private result — bus-bound.
pub fn mgrid(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "vol", 8192, 0x33);
    b.alloc("res", 1024);
    b.la(Reg::S0, "vol");
    b.la(Reg::S1, "res");
    b.li(Reg::A4, 0);
    b.li(Reg::T0, scale.iterations(6_000));
    b.label("task");
    b.task();
    b.fmov(Reg::f(4), Reg::f(0));
    for i in 0..16 {
        // Stride of 67 words scatters the gather across blocks and banks.
        let off = ((i * 67) % 1024) * 8;
        b.andi(Reg::T1, Reg::A4, 4095);
        b.slli(Reg::T1, Reg::T1, 3);
        b.add(Reg::T1, Reg::S0, Reg::T1);
        b.fld(Reg::f(1), Reg::T1, off);
        b.fadd(Reg::f(4), Reg::f(4), Reg::f(1));
    }
    b.andi(Reg::T2, Reg::A4, 1023);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.fsd(Reg::f(4), Reg::T2, 0);
    b.addi(Reg::A4, Reg::A4, 37);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("mgrid workload builds")
}

/// Forward substitution: a distance-1 recurrence with an FP divide in
/// the loop — high mis-speculation cost, fully captured by the MDPT.
pub fn applu(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "diag", 512, 0x1b);
    alloc_fp(&mut b, "rhs", 512, 0x1c);
    b.la(Reg::S0, "diag");
    b.la(Reg::S1, "rhs");
    b.li(Reg::A4, 1);
    b.li(Reg::T0, scale.iterations(12_000));
    b.label("task");
    b.task();
    b.addi(Reg::T1, Reg::A4, -1);
    b.andi(Reg::T1, Reg::T1, 511);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S1, Reg::T1);
    b.fld(Reg::f(1), Reg::T1, 0); // rhs[i-1], written by previous task
    b.andi(Reg::T2, Reg::A4, 511);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T3, Reg::S0, Reg::T2);
    b.fld(Reg::f(2), Reg::T3, 0); // diag[i] (read-only)
    b.fdiv(Reg::f(3), Reg::f(1), Reg::f(2));
    b.fadd(Reg::f(3), Reg::f(3), Reg::f(2));
    b.add(Reg::T4, Reg::S1, Reg::T2);
    b.fsd(Reg::f(3), Reg::T4, 0); // rhs[i]
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("applu workload builds")
}

/// FFT-style butterflies on a private 16-word buffer per task (the
/// buffer rotates over a pool, far wider than the task window).
pub fn turb3d(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "buf", 4096, 0x3d);
    b.la(Reg::S0, "buf");
    b.li(Reg::A4, 0);
    b.li(Reg::T0, scale.iterations(8_000));
    b.label("task");
    b.task();
    b.andi(Reg::T1, Reg::A4, 255);
    b.slli(Reg::T1, Reg::T1, 7); // 16-word private strips
    b.add(Reg::T1, Reg::S0, Reg::T1);
    for i in 0..4 {
        b.fld(Reg::f(1), Reg::T1, i * 16);
        b.fld(Reg::f(2), Reg::T1, i * 16 + 8);
        b.fadd(Reg::f(3), Reg::f(1), Reg::f(2));
        b.fsub(Reg::f(4), Reg::f(1), Reg::f(2));
        b.fmul(Reg::f(3), Reg::f(3), Reg::f(3));
        b.fmul(Reg::f(4), Reg::f(4), Reg::f(4));
        b.fsd(Reg::f(3), Reg::T1, i * 16);
        b.fsd(Reg::f(4), Reg::T1, i * 16 + 8);
    }
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("turb3d workload builds")
}

/// Quantum-chemistry-style giant tasks: ~160 unrolled load-compute-store
/// steps per task (~800 instructions). Step *i* reads shared scalar *i*
/// and writes scalar *(i+80) mod 160*, so for half the scalars the
/// producing store lands ~400 instructions later in the previous task
/// than the consuming load — a dense wavefront of fixed-distance edges.
/// Blind speculation squash-replays these enormous tasks repeatedly;
/// the synchronization mechanism recovers essentially the whole oracle
/// gain.
pub fn fpppp(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "scalars", 160, 0x0f);
    b.la(Reg::S0, "scalars");
    b.li(Reg::T0, scale.iterations(1_200));
    b.label("task");
    b.task();
    for i in 0..160 {
        b.fld(Reg::f(1), Reg::S0, i * 8);
        if i % 2 == 0 {
            b.fadd(Reg::f(1), Reg::f(1), Reg::f(1));
        } else {
            b.fmul(Reg::f(1), Reg::f(1), Reg::f(1));
        }
        b.fsd(Reg::f(1), Reg::S0, ((i + 80) % 160) * 8);
    }
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("fpppp workload builds")
}

/// Mixed recurrences: odd tasks update a shared pair of accumulators
/// (distance-2 recurrence), even tasks do independent work.
pub fn apsi(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "acc", 2, 0xa0);
    alloc_fp(&mut b, "field", 1024, 0xa1);
    b.la(Reg::S0, "acc");
    b.la(Reg::S1, "field");
    b.li(Reg::A4, 0);
    b.li(Reg::T0, scale.iterations(14_000));
    b.label("task");
    b.task();
    b.andi(Reg::T1, Reg::A4, 1);
    b.beq(Reg::T1, Reg::ZERO, "independent");
    // Recurrent task: acc[i & 1] += f(field[...]) — the same slot is
    // touched every other task, a distance-2 recurrence.
    b.andi(Reg::T2, Reg::A4, 1023);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.fld(Reg::f(1), Reg::T2, 0);
    b.fld(Reg::f(2), Reg::S0, 8);
    b.fadd(Reg::f(2), Reg::f(2), Reg::f(1));
    b.fsd(Reg::f(2), Reg::S0, 8);
    b.j("apsi_next");
    b.label("independent");
    b.andi(Reg::T2, Reg::A4, 1023);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.fld(Reg::f(3), Reg::T2, 0);
    b.fmul(Reg::f(3), Reg::f(3), Reg::f(3));
    b.fsd(Reg::f(3), Reg::T2, 0);
    b.label("apsi_next");
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("apsi workload builds")
}

/// Particle push: each task updates two pseudo-random particles
/// (position += velocity); collisions between nearby tasks create
/// medium-frequency dependences.
pub fn wave5(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_fp(&mut b, "pos", 256, 0x71);
    alloc_fp(&mut b, "vel", 256, 0x72);
    b.la(Reg::S0, "pos");
    b.la(Reg::S1, "vel");
    b.li(Reg::S5, crate::util::HASH_K);
    b.li(Reg::A6, 0x371); // task counter (offset by a seed)
    b.li(Reg::T0, scale.iterations(12_000));
    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    crate::util::task_hash(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    // Independent field reads (dilution).
    b.andi(Reg::T2, Reg::A6, 255);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T3, Reg::S1, Reg::T2);
    b.fld(Reg::f(4), Reg::T3, 0);
    b.fadd(Reg::f(5), Reg::f(4), Reg::f(4));
    // One particle push per task: pos[p] += vel[p] on a pseudo-random p.
    b.srli(Reg::T2, Reg::A7, 3);
    b.andi(Reg::T2, Reg::T2, 255);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T3, Reg::S0, Reg::T2);
    b.add(Reg::T4, Reg::S1, Reg::T2);
    b.fld(Reg::f(1), Reg::T3, 0);
    b.fld(Reg::f(2), Reg::T4, 0);
    b.fadd(Reg::f(1), Reg::f(1), Reg::f(2));
    b.fsd(Reg::f(1), Reg::T3, 0);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("wave5 workload builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;
    use mds_ooo::{WindowAnalyzer, WindowConfig};

    fn misspecs_at(p: &Program, ws: u32) -> u64 {
        let mut a = WindowAnalyzer::new(WindowConfig {
            window_sizes: vec![ws],
            ddc_sizes: vec![],
        });
        Emulator::new(p).run_with(|d| a.observe(d)).unwrap();
        a.finish().for_window(ws).unwrap().misspeculations
    }

    #[test]
    fn tomcatv_has_a_tight_recurrence() {
        assert!(misspecs_at(&tomcatv(Scale::Tiny), 64) > 100);
    }

    #[test]
    fn swim_has_no_dependences_in_window() {
        assert_eq!(misspecs_at(&swim(Scale::Tiny), 256), 0);
    }

    #[test]
    fn fpppp_tasks_are_huge_with_wide_working_set() {
        let p = fpppp(Scale::Tiny);
        let sum = Emulator::new(&p).run_with(|_| {}).unwrap();
        let per_task = sum.instructions as f64 / sum.tasks as f64;
        assert!(per_task > 250.0, "task size {per_task}");
        let mut a = WindowAnalyzer::new(WindowConfig {
            window_sizes: vec![512],
            ddc_sizes: vec![64],
        });
        Emulator::new(&p).run_with(|d| a.observe(d)).unwrap();
        let r = a.finish();
        let w = r.for_window(512).unwrap();
        assert!(w.static_edges() >= 90, "static edges {}", w.static_edges());
    }

    #[test]
    fn su2cor_has_many_static_edges() {
        // An 8-stage Multiscalar window spans ~8 tasks (~2000 instructions
        // here); measure at that reach over a full Small run.
        let p = su2cor(Scale::Small);
        let mut a = WindowAnalyzer::new(WindowConfig {
            window_sizes: vec![2048],
            ddc_sizes: vec![],
        });
        Emulator::new(&p).run_with(|d| a.observe(d)).unwrap();
        let r = a.finish();
        let edges = r.for_window(2048).unwrap().static_edges();
        assert!(edges > 60, "static edges {edges}");
    }

    #[test]
    fn applu_values_stay_finite() {
        let p = applu(Scale::Tiny);
        let mut e = Emulator::new(&p);
        e.run_with(|_| {}).unwrap();
        let rhs = p.symbol("rhs").unwrap();
        let v = e.state().mem.read_f64(rhs + 8);
        assert!(v.is_finite());
    }

    #[test]
    fn apsi_alternates_task_kinds() {
        let p = apsi(Scale::Tiny);
        // Both dependence-carrying and independent stores must appear.
        let mut acc_stores = 0u64;
        let mut field_stores = 0u64;
        let acc = p.symbol("acc").unwrap();
        Emulator::new(&p)
            .run_with(|d| {
                if let Some(m) = d.mem {
                    if m.is_store {
                        if m.addr < acc + 16 {
                            acc_stores += 1;
                        } else {
                            field_stores += 1;
                        }
                    }
                }
            })
            .unwrap();
        assert!(acc_stores > 0 && field_stores > 0);
    }

    #[test]
    fn wave5_has_moderate_collision_rate() {
        let m = misspecs_at(&wave5(Scale::Tiny), 256);
        assert!(m > 0, "no collisions at all");
    }
}
