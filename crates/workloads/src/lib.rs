//! Synthetic benchmark programs with documented memory-dependence
//! phenotypes.
//!
//! The paper evaluates on SPECint92 (compress, espresso, gcc, sc, xlisp)
//! and SPEC95 binaries compiled by the Multiscalar compiler. Those
//! binaries and that compiler are not available, so this crate substitutes
//! **hand-written synthetic programs** in the `mds` ISA, one per paper
//! benchmark, each constructed to exhibit the *dependence phenotype* the
//! paper reports for its counterpart:
//!
//! - few hot store→load pairs on globals with strong temporal locality
//!   (compress-like), and hit/miss *path-dependent* dependences that
//!   defeat a plain counter predictor but not ESYNC;
//! - pointer-walk tasks of ~100 instructions whose mis-speculations are
//!   simple recurrences (espresso-like);
//! - irregular code with many static dependence edges and poor locality
//!   (gcc-like, go-like);
//! - loop-carried recurrences through memory at short and medium task
//!   distances (sc-like, tomcatv-like, applu-like);
//! - allocator/stack churn (xlisp-like, li-like);
//! - dependence working sets that overflow a 64-entry MDPT inside huge
//!   tasks (fpppp-like, su2cor-like);
//! - saturated streaming codes with nothing for dependence speculation to
//!   gain (swim-like, mgrid-like).
//!
//! Every workload is deterministic: in-program "randomness" comes from an
//! xorshift generator computed in registers, and initial data is generated
//! from a fixed per-workload seed.
//!
//! # Examples
//!
//! ```
//! use mds_workloads::{by_name, Scale};
//! use mds_emu::Emulator;
//!
//! let wl = by_name("compress").expect("registered workload");
//! let program = wl.build(Scale::Tiny);
//! let summary = Emulator::new(&program).run_with(|_| {})?;
//! assert!(summary.tasks > 10);
//! assert!(summary.loads > 0 && summary.stores > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod int92;
pub mod registry;
pub mod spec95fp;
pub mod spec95int;
pub mod util;

pub use registry::{register_generated, GeneratedSpec, RegistryError};

use mds_isa::Program;

/// How big a run to generate.
///
/// `Tiny` keeps unit tests fast; `Small` is the default for the
/// reproduction harness; `Full` approaches the paper's run lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few hundred tasks — unit tests.
    Tiny,
    /// Tens of thousands of tasks — the reproduction harness default.
    Small,
    /// Hundreds of thousands of tasks — closest to the paper's runs.
    Full,
}

impl Scale {
    /// Multiplies a workload's base iteration count.
    pub fn iterations(self, base: i32) -> i32 {
        match self {
            Scale::Tiny => base / 64,
            Scale::Small => base,
            Scale::Full => base.saturating_mul(8),
        }
        .max(16)
    }
}

/// Which paper suite a workload substitutes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint92 (the paper's primary five programs).
    Int92,
    /// SPECint95 (figure 7, integer half).
    Spec95Int,
    /// SPECfp95 (figure 7, floating-point half).
    Spec95Fp,
    /// Generated at runtime from a WDL scenario or imported trace.
    Generated,
}

impl Suite {
    /// Stable lowercase label used by `repro list` and results tables.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Int92 => "int92",
            Suite::Spec95Int => "spec95-int",
            Suite::Spec95Fp => "spec95-fp",
            Suite::Generated => "generated",
        }
    }
}

/// How a workload's program is constructed.
///
/// Hand-written workloads carry a plain function pointer so the registry
/// tables stay `const`; generated workloads are resolved by name through
/// the [`registry`], whose entries close over their compiled spec.
#[derive(Debug, Clone, Copy)]
pub enum Builder {
    /// A hand-written constructor, resolved at compile time.
    Static(fn(Scale) -> Program),
    /// Resolved through [`registry::build_dynamic`] by workload name.
    Dynamic,
}

/// A registered synthetic workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Short name (the paper benchmark it substitutes for).
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// What the original program does.
    pub description: &'static str,
    /// The dependence phenotype this synthetic program reproduces.
    pub phenotype: &'static str,
    /// How to construct the program.
    pub builder: Builder,
}

impl Workload {
    /// Builds the program at the given scale.
    ///
    /// Deterministic: two calls with the same name and scale yield
    /// byte-identical programs (the trace cache relies on this).
    pub fn build(&self, scale: Scale) -> Program {
        match self.builder {
            Builder::Static(f) => f(scale),
            Builder::Dynamic => registry::build_dynamic(self.name, scale),
        }
    }
}

/// All hand-written workloads, int92 suite first, then SPEC95 int, then
/// SPEC95 fp. Generated workloads are listed by [`generated`] instead.
pub fn all() -> Vec<Workload> {
    let mut v = int92_suite();
    v.extend(spec95_suite());
    v
}

/// The SPECint92-substitute suite (the paper's five primary programs).
pub fn int92_suite() -> Vec<Workload> {
    int92::WORKLOADS.to_vec()
}

/// The SPEC95-substitute suite (figure 7).
pub fn spec95_suite() -> Vec<Workload> {
    let mut v = spec95int::WORKLOADS.to_vec();
    v.extend_from_slice(&spec95fp::WORKLOADS);
    v
}

/// Workloads registered at runtime through the dynamic [`registry`], in
/// registration order.
pub fn generated() -> Vec<Workload> {
    registry::generated()
}

/// Looks up a workload by name: the static tables first, then the
/// dynamic registry.
///
/// Scans the `const` name tables directly — no per-lookup allocation.
pub fn by_name(name: &str) -> Option<Workload> {
    static_by_name(name).or_else(|| registry::by_name(name))
}

/// Looks up a hand-written workload in the `const` suite tables.
pub(crate) fn static_by_name(name: &str) -> Option<Workload> {
    int92::WORKLOADS
        .iter()
        .chain(spec95int::WORKLOADS.iter())
        .chain(spec95fp::WORKLOADS.iter())
        .find(|w| w.name == name)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;

    #[test]
    fn registry_has_expected_sizes() {
        assert_eq!(int92_suite().len(), 5);
        assert_eq!(spec95_suite().len(), 18);
        assert_eq!(all().len(), 23);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("compress").is_some());
        assert!(by_name("tomcatv").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_builds_and_halts_at_tiny_scale() {
        for wl in all() {
            let p = wl.build(Scale::Tiny);
            let mut emu = Emulator::new(&p).with_limit(20_000_000);
            let sum = emu
                .run_with(|_| {})
                .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name));
            assert!(sum.instructions > 500, "{}: too few instructions", wl.name);
            assert!(sum.tasks > 8, "{}: too few tasks ({})", wl.name, sum.tasks);
            assert!(sum.loads > 0, "{}: no loads", wl.name);
            assert!(sum.stores > 0, "{}: no stores", wl.name);
        }
    }

    #[test]
    fn scale_multiplies_iterations() {
        assert!(Scale::Tiny.iterations(6400) < Scale::Small.iterations(6400));
        assert!(Scale::Small.iterations(6400) < Scale::Full.iterations(6400));
        assert_eq!(Scale::Tiny.iterations(1), 16); // floor
    }

    #[test]
    fn workloads_are_deterministic() {
        for wl in [by_name("compress").unwrap(), by_name("gcc").unwrap()] {
            let a = wl.build(Scale::Tiny);
            let b = wl.build(Scale::Tiny);
            assert_eq!(a.instructions(), b.instructions(), "{}", wl.name);
            assert_eq!(
                a.initial_data().collect::<Vec<_>>(),
                b.initial_data().collect::<Vec<_>>(),
                "{}",
                wl.name
            );
        }
    }
}
