//! Dynamic workload registry for generated programs.
//!
//! The hand-written suites live in `const` tables; workloads compiled at
//! runtime (WDL scenarios, imported traces) register here instead. An
//! entry pairs a [`Workload`] descriptor — whose `builder` is
//! [`Builder::Dynamic`] — with the closure that compiles its program and
//! a **fingerprint** of the spec it was compiled from.
//!
//! The fingerprint is the integrity guarantee behind cache identity: the
//! runner's trace cache keys on `(name, scale)`, so re-registering a name
//! with *different* content would silently alias two distinct programs.
//! Registration is therefore idempotent for an identical `(name,
//! fingerprint)` pair and an error for a mismatched one.
//!
//! Names, descriptions, and phenotype strings are interned (leaked) so
//! [`Workload`] can stay `Copy` with `&'static str` fields. The leak is
//! bounded by the number of *distinct* registered names per process;
//! idempotent re-registration allocates nothing.

use crate::{static_by_name, Builder, Scale, Suite, Workload};
use mds_isa::Program;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The compile closure a dynamic entry carries.
pub type BuildFn = Arc<dyn Fn(Scale) -> Program + Send + Sync>;

/// Everything needed to register a generated workload.
pub struct GeneratedSpec {
    /// Unique workload name (e.g. `wdl/compress_like/s0/0`).
    pub name: String,
    /// Human-readable provenance line.
    pub description: String,
    /// Phenotype one-liner shown by `repro list`.
    pub phenotype: String,
    /// Hash of the canonical spec identity `(spec, seed, index)`.
    pub fingerprint: u64,
    /// Compiles the program; must be deterministic in `scale`.
    pub build: BuildFn,
}

/// Why a registration was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is empty or contains whitespace.
    InvalidName(String),
    /// The name belongs to a hand-written workload.
    ShadowsStatic(String),
    /// The name is registered with a different fingerprint.
    FingerprintMismatch {
        /// The contested workload name.
        name: String,
        /// Fingerprint already registered under the name.
        registered: u64,
        /// Fingerprint of the rejected registration.
        offered: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidName(n) => {
                write!(
                    f,
                    "invalid workload name {n:?}: must be non-empty, no whitespace"
                )
            }
            RegistryError::ShadowsStatic(n) => {
                write!(f, "workload name {n:?} shadows a hand-written workload")
            }
            RegistryError::FingerprintMismatch {
                name,
                registered,
                offered,
            } => write!(
                f,
                "workload {name:?} already registered with fingerprint \
                 {registered:#018x}, refusing conflicting {offered:#018x}"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

struct Entry {
    workload: Workload,
    fingerprint: u64,
    build: BuildFn,
    order: usize,
}

fn state() -> &'static RwLock<HashMap<&'static str, Entry>> {
    static STATE: OnceLock<RwLock<HashMap<&'static str, Entry>>> = OnceLock::new();
    STATE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Registers a generated workload, returning its `Copy`able descriptor.
///
/// Idempotent: registering the same `(name, fingerprint)` again returns
/// the existing descriptor without allocating. A fingerprint mismatch is
/// an error — see the module docs for why that must never be silent.
pub fn register_generated(spec: GeneratedSpec) -> Result<Workload, RegistryError> {
    if spec.name.is_empty() || spec.name.chars().any(char::is_whitespace) {
        return Err(RegistryError::InvalidName(spec.name));
    }
    if static_by_name(&spec.name).is_some() {
        return Err(RegistryError::ShadowsStatic(spec.name));
    }
    let mut map = state().write().expect("workload registry poisoned");
    if let Some(existing) = map.get(spec.name.as_str()) {
        if existing.fingerprint == spec.fingerprint {
            return Ok(existing.workload);
        }
        return Err(RegistryError::FingerprintMismatch {
            name: spec.name,
            registered: existing.fingerprint,
            offered: spec.fingerprint,
        });
    }
    fn leak(s: String) -> &'static str {
        Box::leak(s.into_boxed_str())
    }
    let name: &'static str = leak(spec.name);
    let workload = Workload {
        name,
        suite: Suite::Generated,
        description: leak(spec.description),
        phenotype: leak(spec.phenotype),
        builder: Builder::Dynamic,
    };
    let order = map.len();
    map.insert(
        name,
        Entry {
            workload,
            fingerprint: spec.fingerprint,
            build: spec.build,
            order,
        },
    );
    Ok(workload)
}

/// Looks up a dynamic workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    state()
        .read()
        .expect("workload registry poisoned")
        .get(name)
        .map(|e| e.workload)
}

/// All dynamic workloads, in registration order.
pub fn generated() -> Vec<Workload> {
    let map = state().read().expect("workload registry poisoned");
    let mut entries: Vec<(&usize, Workload)> =
        map.values().map(|e| (&e.order, e.workload)).collect();
    entries.sort_by_key(|(order, _)| **order);
    entries.into_iter().map(|(_, w)| w).collect()
}

/// All dynamic `(name, fingerprint)` pairs, in registration order.
///
/// This is the registry's identity surface: the serving tier folds these
/// into its store epoch so results computed under one set of registered
/// families are never served under another.
pub fn generated_fingerprints() -> Vec<(&'static str, u64)> {
    let map = state().read().expect("workload registry poisoned");
    let mut entries: Vec<(usize, &'static str, u64)> = map
        .iter()
        .map(|(name, e)| (e.order, *name, e.fingerprint))
        .collect();
    entries.sort_by_key(|(order, _, _)| *order);
    entries
        .into_iter()
        .map(|(_, name, fp)| (name, fp))
        .collect()
}

/// Builds a dynamic workload's program.
///
/// # Panics
///
/// Panics if `name` is not registered. A [`Workload`] with
/// [`Builder::Dynamic`] can only be obtained through
/// [`register_generated`], so this is unreachable unless the descriptor
/// outlived the process that registered it (descriptors are not
/// serializable, so that cannot happen in safe code).
pub(crate) fn build_dynamic(name: &str, scale: Scale) -> Program {
    let build = {
        let map = state().read().expect("workload registry poisoned");
        let entry = map
            .get(name)
            .unwrap_or_else(|| panic!("dynamic workload {name:?} not registered"));
        Arc::clone(&entry.build)
    };
    build(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_isa::ProgramBuilder;

    fn trivial_build() -> BuildFn {
        Arc::new(|scale: Scale| {
            let mut b = ProgramBuilder::new();
            b.li(mds_isa::Reg::T0, scale.iterations(64));
            b.label("t");
            b.task();
            b.addi(mds_isa::Reg::A0, mds_isa::Reg::A0, 1);
            crate::util::loop_epilogue(&mut b, mds_isa::Reg::T0, "t");
            b.build().unwrap()
        })
    }

    #[test]
    fn register_build_and_reregister() {
        let spec = || GeneratedSpec {
            name: "test/reg/a".to_string(),
            description: "d".to_string(),
            phenotype: "p".to_string(),
            fingerprint: 0xabcd,
            build: trivial_build(),
        };
        let wl = register_generated(spec()).unwrap();
        assert_eq!(wl.suite, Suite::Generated);
        let p1 = wl.build(Scale::Tiny);
        let p2 = crate::by_name("test/reg/a").unwrap().build(Scale::Tiny);
        assert_eq!(p1.instructions(), p2.instructions());
        // Idempotent re-registration.
        let again = register_generated(spec()).unwrap();
        assert_eq!(again.name, wl.name);
        // Conflicting fingerprint refused.
        let mut bad = spec();
        bad.fingerprint = 0x1234;
        assert!(matches!(
            register_generated(bad),
            Err(RegistryError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn static_names_and_bad_names_are_refused() {
        let mk = |name: &str| GeneratedSpec {
            name: name.to_string(),
            description: String::new(),
            phenotype: String::new(),
            fingerprint: 1,
            build: trivial_build(),
        };
        assert!(matches!(
            register_generated(mk("compress")),
            Err(RegistryError::ShadowsStatic(_))
        ));
        assert!(matches!(
            register_generated(mk("")),
            Err(RegistryError::InvalidName(_))
        ));
        assert!(matches!(
            register_generated(mk("has space")),
            Err(RegistryError::InvalidName(_))
        ));
    }

    #[test]
    fn generated_listing_preserves_registration_order() {
        for i in 0..3 {
            register_generated(GeneratedSpec {
                name: format!("test/order/{i}"),
                description: String::new(),
                phenotype: String::new(),
                fingerprint: i,
                build: trivial_build(),
            })
            .unwrap();
        }
        let names: Vec<&str> = generated()
            .into_iter()
            .map(|w| w.name)
            .filter(|n| n.starts_with("test/order/"))
            .collect();
        assert_eq!(names, ["test/order/0", "test/order/1", "test/order/2"]);
    }
}
