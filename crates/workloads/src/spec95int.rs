//! The SPECint95-substitute suite: go, m88ksim, gcc, compress, li,
//! ijpeg, perl, vortex (the paper's figure 7, integer half).

use crate::util::{alloc_linked_ring, alloc_random, loop_epilogue, seed_rng, xorshift};
use crate::{int92, Builder, Scale, Suite, Workload};
use mds_isa::{Program, ProgramBuilder, Reg};

/// The eight SPECint95 workloads in the paper's order.
pub const WORKLOADS: [Workload; 8] = [
    Workload {
        name: "go",
        suite: Suite::Spec95Int,
        description: "go-playing program: board evaluation with irregular control",
        phenotype: "irregular dependences and, above all, poor task-level control \
                        prediction — three task types chosen pseudo-randomly",
        builder: Builder::Static(go),
    },
    Workload {
        name: "m88ksim",
        suite: Suite::Spec95Int,
        description: "CPU simulator: fetch/decode/execute over an in-memory register file",
        phenotype: "hot register-file read-modify-write edges with excellent temporal \
                        locality — the mechanism performs close to ideal",
        builder: Builder::Static(m88ksim),
    },
    Workload {
        name: "gcc95",
        suite: Suite::Spec95Int,
        description: "compiler (95 input set): larger IR pool than the int92 variant",
        phenotype: "many static edges, poor locality; falls short of ideal",
        builder: Builder::Static(gcc95),
    },
    Workload {
        name: "compress95",
        suite: Suite::Spec95Int,
        description: "LZW compressor (95 input set)",
        phenotype: "same hot path-dependent global edges as the int92 variant",
        builder: Builder::Static(int92::compress),
    },
    Workload {
        name: "li",
        suite: Suite::Spec95Int,
        description: "lisp interpreter (95 input set): deeper allocation churn",
        phenotype: "free-list recurrence plus garbage-collection-style sweeps",
        builder: Builder::Static(li),
    },
    Workload {
        name: "ijpeg",
        suite: Suite::Spec95Int,
        description: "JPEG codec: blocked pixel transforms",
        phenotype: "mostly independent block tasks with an occasional shared \
                        accumulator — moderate gains",
        builder: Builder::Static(ijpeg),
    },
    Workload {
        name: "perl",
        suite: Suite::Spec95Int,
        description: "perl interpreter: symbol-table hashing",
        phenotype: "bucket read-modify-writes of medium locality plus one hot \
                        operation counter",
        builder: Builder::Static(perl),
    },
    Workload {
        name: "vortex",
        suite: Suite::Spec95Int,
        description: "object database: record updates with transaction logging",
        phenotype: "a hot log-pointer recurrence plus medium-distance log read-backs",
        builder: Builder::Static(vortex),
    },
];

/// Board evaluator with three task types selected by the RNG, so the
/// next-task PC is inherently hard to predict — reproducing go's
/// control-bound behavior in the paper (poor control prediction and
/// instruction supply limit everything else).
pub fn go(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "board", 512, 4, 0x60);
    b.alloc("goglobals", 2);
    b.la(Reg::S0, "board");
    b.la(Reg::S1, "goglobals");
    seed_rng(&mut b, Reg::A7, 0x260);
    b.li(Reg::T0, scale.iterations(10_000));
    b.label("dispatch");
    xorshift(&mut b, Reg::A7, Reg::T1);
    b.andi(Reg::T2, Reg::A7, 3);
    b.beq(Reg::T2, Reg::ZERO, "eval_task");
    b.addi(Reg::T2, Reg::T2, -1);
    b.beq(Reg::T2, Reg::ZERO, "capture_task");
    b.j("territory_task");

    // Task type 1: influence evaluation (reads a random 8-cell region).
    b.label("eval_task");
    b.task();
    b.srli(Reg::T3, Reg::A7, 4);
    b.andi(Reg::T3, Reg::T3, 511 - 8);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.li(Reg::A0, 0);
    for i in 0..8 {
        b.ld(Reg::T4, Reg::T3, i * 8);
        b.add(Reg::A0, Reg::A0, Reg::T4);
    }
    b.ld(Reg::T5, Reg::S1, 0);
    b.add(Reg::T5, Reg::T5, Reg::A0);
    b.sd(Reg::T5, Reg::S1, 0);
    b.j("next");

    // Task type 2: capture check (conditional board write).
    b.label("capture_task");
    b.task();
    b.srli(Reg::T3, Reg::A7, 5);
    b.andi(Reg::T3, Reg::T3, 511);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.ld(Reg::A0, Reg::T3, 0);
    b.andi(Reg::A1, Reg::A0, 3);
    b.bne(Reg::A1, Reg::ZERO, "no_capture");
    b.addi(Reg::A0, Reg::A0, 1);
    b.sd(Reg::A0, Reg::T3, 0);
    b.label("no_capture");
    b.j("next");

    // Task type 3: territory count (strided reads plus a global).
    b.label("territory_task");
    b.task();
    b.srli(Reg::T3, Reg::A7, 6);
    b.andi(Reg::T3, Reg::T3, 255);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.li(Reg::A0, 0);
    for i in 0..4 {
        b.ld(Reg::T4, Reg::T3, i * 16);
        b.xor(Reg::A0, Reg::A0, Reg::T4);
    }
    b.ld(Reg::T5, Reg::S1, 8);
    b.xor(Reg::T5, Reg::T5, Reg::A0);
    b.sd(Reg::T5, Reg::S1, 8);
    b.label("next");
    loop_epilogue(&mut b, Reg::T0, "dispatch");
    b.build().expect("go workload builds")
}

/// Toy-CPU simulator: every task interprets one synthetic "instruction"
/// from a 256-entry program memory against a 32-entry in-memory register
/// file. The register-file read-modify-writes are the hot edges — and
/// they recur constantly, so the MDPT captures them almost perfectly.
pub fn m88ksim(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "progmem", 256, 0, 0x88);
    alloc_random(&mut b, "regfile", 32, 1 << 16, 0x89);
    alloc_random(&mut b, "decodetab", 256, 1 << 10, 0x8a);
    b.la(Reg::S0, "progmem");
    b.la(Reg::S1, "regfile");
    b.la(Reg::S2, "decodetab");
    b.li(Reg::A6, 0); // simulated PC
    b.li(Reg::T0, scale.iterations(20_000));
    b.label("task");
    b.task();
    // fetch: op = progmem[pc & 255]
    b.andi(Reg::T1, Reg::A6, 255);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::A0, Reg::T1, 0);
    // Independent decode-table reads (dilution).
    b.andi(Reg::T6, Reg::A0, 255);
    b.slli(Reg::T6, Reg::T6, 3);
    b.add(Reg::T6, Reg::S2, Reg::T6);
    b.ld(Reg::A4, Reg::T6, 0);
    b.srli(Reg::T6, Reg::A0, 24);
    b.andi(Reg::T6, Reg::T6, 255);
    b.slli(Reg::T6, Reg::T6, 3);
    b.add(Reg::T6, Reg::S2, Reg::T6);
    b.ld(Reg::A5, Reg::T6, 0);
    // decode fields: rs1 = op[4:0] & 31, rs2 = op[9:5] & 31, rd = op[14:10] & 31
    b.andi(Reg::T2, Reg::A0, 31);
    b.srli(Reg::T3, Reg::A0, 5);
    b.andi(Reg::T3, Reg::T3, 31);
    b.srli(Reg::T4, Reg::A0, 10);
    b.andi(Reg::T4, Reg::T4, 31);
    // read register operands
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.ld(Reg::A1, Reg::T2, 0);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S1, Reg::T3);
    b.ld(Reg::A2, Reg::T3, 0);
    // execute: two "opcodes"
    b.srli(Reg::T5, Reg::A0, 15);
    b.andi(Reg::T5, Reg::T5, 1);
    b.beq(Reg::T5, Reg::ZERO, "alu_add");
    b.xor(Reg::A3, Reg::A1, Reg::A2);
    b.j("writeback");
    b.label("alu_add");
    b.add(Reg::A3, Reg::A1, Reg::A2);
    b.label("writeback");
    b.slli(Reg::T4, Reg::T4, 3);
    b.add(Reg::T4, Reg::S1, Reg::T4);
    b.sd(Reg::A3, Reg::T4, 0);
    b.addi(Reg::A6, Reg::A6, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("m88ksim workload builds")
}

/// The gcc kernel with a larger node pool and more rounds per task —
/// the 95 input set exposes an even wider dependence working set.
pub fn gcc95(scale: Scale) -> Program {
    int92::gcc_kernel(scale, 256, 4, 0x29cc)
}

/// Lisp interpreter, 95 flavor: the xlisp allocator kernel interleaved
/// with a mark-sweep-style pass every 32 tasks (a burst of cell reads
/// and flag writes).
pub fn li(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    let cells = alloc_linked_ring(&mut b, "heap", 128, 2, 1, 0x11);
    b.alloc_init("liglobals", &[cells, 0]);
    b.alloc("marks", 128);
    b.la(Reg::S1, "liglobals");
    b.la(Reg::S2, "marks");
    b.la(Reg::S4, "heap");
    b.li(Reg::A3, 0); // task counter
    seed_rng(&mut b, Reg::A7, 0x111);
    b.li(Reg::T0, scale.iterations(12_000));
    b.label("task");
    b.task();
    b.addi(Reg::A3, Reg::A3, 1);
    xorshift(&mut b, Reg::A7, Reg::T1);
    // Independent work: four-hop traversal over the heap arena.
    b.andi(Reg::T2, Reg::A7, 127);
    b.slli(Reg::T2, Reg::T2, 4);
    b.add(Reg::A5, Reg::S4, Reg::T2);
    for _ in 0..4 {
        b.ld(Reg::A5, Reg::A5, 8);
    }
    // Every 4th task allocates (free-list pop; the hot recurrence at a
    // fixed task distance).
    b.andi(Reg::T3, Reg::A3, 3);
    b.bne(Reg::T3, Reg::ZERO, "no_alloc95");
    b.ld(Reg::A1, Reg::S1, 0);
    b.ld(Reg::A2, Reg::A1, 8);
    b.sd(Reg::A2, Reg::S1, 0);
    b.sd(Reg::A7, Reg::A1, 0);
    // Free it again (push).
    b.ld(Reg::T2, Reg::S1, 0);
    b.sd(Reg::T2, Reg::A1, 8);
    b.sd(Reg::A1, Reg::S1, 0);
    b.label("no_alloc95");
    // Every 32nd task: a small GC sweep over 16 mark words.
    b.ld(Reg::A3, Reg::S1, 8);
    b.addi(Reg::A3, Reg::A3, 1);
    b.sd(Reg::A3, Reg::S1, 8);
    b.andi(Reg::T3, Reg::A3, 31);
    b.bne(Reg::T3, Reg::ZERO, "no_gc");
    for i in 0..16 {
        b.ld(Reg::T4, Reg::S2, i * 8);
        b.addi(Reg::T4, Reg::T4, 1);
        b.sd(Reg::T4, Reg::S2, i * 8);
    }
    b.label("no_gc");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("li workload builds")
}

/// Blocked pixel transform: each task processes one 8-sample strip with
/// a butterfly of adds/shifts into a disjoint output strip; every 8th
/// task folds a checksum into a shared accumulator. Tasks are almost
/// entirely independent — the paper's ijpeg gains are moderate.
pub fn ijpeg(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "src", 1024, 256, 0x1e6);
    b.alloc("dst", 1024);
    b.alloc("jpgglobals", 1);
    b.la(Reg::S0, "src");
    b.la(Reg::S1, "dst");
    b.la(Reg::S3, "jpgglobals");
    b.li(Reg::A6, 0); // strip index
    b.li(Reg::T0, scale.iterations(12_000));
    b.label("task");
    b.task();
    b.andi(Reg::T1, Reg::A6, 127);
    b.slli(Reg::T1, Reg::T1, 6); // strip of 8 words
    b.add(Reg::T2, Reg::S0, Reg::T1);
    b.add(Reg::T3, Reg::S1, Reg::T1);
    // Butterfly: out[i] = in[i] + in[7-i]; out[7-i] = in[i] - in[7-i].
    for i in 0..4 {
        b.ld(Reg::A0, Reg::T2, i * 8);
        b.ld(Reg::A1, Reg::T2, (7 - i) * 8);
        b.add(Reg::A2, Reg::A0, Reg::A1);
        b.sub(Reg::A3, Reg::A0, Reg::A1);
        b.sd(Reg::A2, Reg::T3, i * 8);
        b.sd(Reg::A3, Reg::T3, (7 - i) * 8);
    }
    b.addi(Reg::A6, Reg::A6, 1);
    // Every 8th strip: fold into the shared checksum.
    b.andi(Reg::T4, Reg::A6, 7);
    b.bne(Reg::T4, Reg::ZERO, "no_sum");
    b.ld(Reg::T5, Reg::S3, 0);
    b.add(Reg::T5, Reg::T5, Reg::A2);
    b.sd(Reg::T5, Reg::S3, 0);
    b.label("no_sum");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("ijpeg workload builds")
}

/// Symbol-table hashing: each task hashes a 4-"character" word through
/// an inner loop, read-modify-writes the bucket, and bumps a hot
/// operation counter.
pub fn perl(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    b.alloc("buckets", 512);
    b.alloc("perlglobals", 1);
    b.la(Reg::S0, "buckets");
    b.la(Reg::S1, "perlglobals");
    b.li(Reg::S5, crate::util::HASH_K);
    b.li(Reg::A6, 0x9e1); // task counter (offset by a seed)
    b.li(Reg::T0, scale.iterations(14_000));
    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    crate::util::task_hash(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    // Hash 4 "characters" (bytes of the RNG word).
    b.li(Reg::A0, 5381);
    b.mv(Reg::A1, Reg::A7);
    b.li(Reg::T2, 4);
    b.label("hash_char");
    b.andi(Reg::T3, Reg::A1, 0xff);
    b.slli(Reg::T4, Reg::A0, 5);
    b.add(Reg::A0, Reg::A0, Reg::T4);
    b.add(Reg::A0, Reg::A0, Reg::T3);
    b.srli(Reg::A1, Reg::A1, 8);
    b.addi(Reg::T2, Reg::T2, -1);
    b.bne(Reg::T2, Reg::ZERO, "hash_char");
    // Bucket read-modify-write: the address depends on the hashed word,
    // so it resolves late (NEVER pays for it).
    b.andi(Reg::T5, Reg::A0, 511);
    b.slli(Reg::T5, Reg::T5, 3);
    b.add(Reg::T5, Reg::S0, Reg::T5);
    b.ld(Reg::A2, Reg::T5, 0);
    b.addi(Reg::A2, Reg::A2, 1);
    b.sd(Reg::A2, Reg::T5, 0);
    // Hot op counter: every 8th task (fixed distance).
    b.andi(Reg::T6, Reg::A6, 7);
    b.bne(Reg::T6, Reg::ZERO, "no_opcount");
    b.ld(Reg::A3, Reg::S1, 0);
    b.addi(Reg::A3, Reg::A3, 1);
    b.sd(Reg::A3, Reg::S1, 0);
    b.label("no_opcount");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("perl workload builds")
}

/// Object database: each task updates a pseudo-random record and appends
/// to a transaction log through a shared log pointer (the hot
/// recurrence); every 4th task reads a recent log entry back (a
/// medium-distance edge).
pub fn vortex(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "records", 1024 * 2, 1 << 24, 0x0b);
    b.alloc("log", 512);
    b.alloc("vtxglobals", 1);
    b.la(Reg::S0, "records");
    b.la(Reg::S2, "log");
    b.la(Reg::S1, "vtxglobals");
    b.li(Reg::S5, crate::util::HASH_K);
    b.li(Reg::A6, 0x10b); // task counter (offset by a seed)
    b.li(Reg::T0, scale.iterations(12_000));
    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    crate::util::task_hash(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    // Update a record field.
    b.srli(Reg::T2, Reg::A7, 8);
    b.andi(Reg::T2, Reg::T2, 1023);
    b.slli(Reg::T2, Reg::T2, 4); // 2-word records
    b.add(Reg::T2, Reg::S0, Reg::T2);
    b.ld(Reg::A0, Reg::T2, 0);
    b.addi(Reg::A0, Reg::A0, 7);
    b.sd(Reg::A0, Reg::T2, 0);
    // A second, independent record read (dilution).
    b.srli(Reg::T3, Reg::A7, 20);
    b.andi(Reg::T3, Reg::T3, 1023);
    b.slli(Reg::T3, Reg::T3, 4);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.ld(Reg::A4, Reg::T3, 8);
    // Commit a transaction every 4th task: the hot log-pointer recurrence
    // plus the log write through the (late) loaded pointer value.
    b.andi(Reg::T4, Reg::A6, 3);
    b.bne(Reg::T4, Reg::ZERO, "no_commit");
    b.ld(Reg::A1, Reg::S1, 0);
    b.addi(Reg::A2, Reg::A1, 1);
    b.sd(Reg::A2, Reg::S1, 0);
    b.andi(Reg::A1, Reg::A1, 511);
    b.slli(Reg::A1, Reg::A1, 3);
    b.add(Reg::A1, Reg::S2, Reg::A1);
    b.sd(Reg::A0, Reg::A1, 0);
    b.label("no_commit");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("vortex workload builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;

    #[test]
    fn go_alternates_task_types() {
        let p = go(Scale::Tiny);
        let mut heads = std::collections::HashSet::new();
        Emulator::new(&p)
            .run_with(|d| {
                if d.new_task {
                    heads.insert(d.pc);
                }
            })
            .unwrap();
        // Dispatch reaches all three task-type entry points (plus the
        // implicit first task at pc 0).
        assert!(heads.len() >= 3, "task heads: {heads:?}");
    }

    #[test]
    fn m88ksim_interprets_every_iteration() {
        let p = m88ksim(Scale::Tiny);
        let sum = Emulator::new(&p).run_with(|_| {}).unwrap();
        // fetch + 2 operand reads + writeback per task
        assert!(sum.loads >= 3 * (sum.tasks - 1));
        assert!(sum.stores >= sum.tasks - 1);
    }

    #[test]
    fn li_gc_burst_runs() {
        let p = li(Scale::Tiny);
        let sum = Emulator::new(&p).run_with(|_| {}).unwrap();
        // The GC path adds 32 memory ops every 32 tasks.
        let per_task = sum.instructions as f64 / sum.tasks as f64;
        assert!(per_task > 15.0, "per task {per_task}");
    }

    #[test]
    fn ijpeg_outputs_butterflies() {
        let p = ijpeg(Scale::Tiny);
        let mut e = Emulator::new(&p);
        e.run_with(|_| {}).unwrap();
        let src = p.symbol("src").unwrap();
        let dst = p.symbol("dst").unwrap();
        let in0 = e.state().mem.read_u64(src) as i64;
        let in7 = e.state().mem.read_u64(src + 56) as i64;
        let out0 = e.state().mem.read_u64(dst) as i64;
        assert_eq!(out0, in0.wrapping_add(in7));
    }

    #[test]
    fn perl_buckets_fill() {
        let p = perl(Scale::Tiny);
        let mut e = Emulator::new(&p);
        e.run_with(|_| {}).unwrap();
        let buckets = p.symbol("buckets").unwrap();
        let filled = (0..512)
            .filter(|i| e.state().mem.read_u64(buckets + i * 8) != 0)
            .count();
        assert!(filled > 100, "only {filled} buckets touched");
    }

    #[test]
    fn vortex_log_pointer_advances() {
        let p = vortex(Scale::Tiny);
        let mut e = Emulator::new(&p);
        let sum = e.run_with(|_| {}).unwrap();
        let ptr = e.state().mem.read_u64(p.symbol("vtxglobals").unwrap());
        // Commits are sampled at roughly one task in four.
        assert!(
            ptr > 0 && ptr < sum.tasks,
            "log ptr {ptr} of {} tasks",
            sum.tasks
        );
    }
}
