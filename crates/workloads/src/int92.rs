//! The SPECint92-substitute suite: compress, espresso, gcc, sc, xlisp.
//!
//! Each builder documents the dependence phenotype it reproduces and why
//! it stands in for its paper counterpart (see the crate docs for the
//! overall substitution argument).
//!
//! # Calibration
//!
//! Three properties make these programs behave like the paper's (rather
//! than like dependence-saturated microkernels):
//!
//! 1. **Dilution** — most dynamic loads are independent work (streaming
//!    buffers, pointer walks, metadata reads); the *hot* store→load edges
//!    fire on a hash-selected fraction of tasks, so blind speculation
//!    mis-speculates on a few percent of committed loads (the paper's
//!    regime), not on every task.
//! 2. **Late store addresses** — key stores compute their addresses from
//!    loaded/derived values, so refusing to speculate (NEVER) really does
//!    serialize execution, which is why blind speculation wins big in
//!    figure 5.
//! 3. **Path structure** — where the paper reports path-dependent
//!    dependences (compress), the paths are separate task types so the
//!    ESYNC predictor has task PCs to key on.

use crate::util::{alloc_linked_ring, alloc_random, loop_epilogue, task_hash, HASH_K};
use crate::{Builder, Scale, Suite, Workload};
use mds_isa::{Program, ProgramBuilder, Reg};

/// The five int92 workloads in the paper's order.
pub const WORKLOADS: [Workload; 5] = [
    Workload {
        name: "compress",
        suite: Suite::Int92,
        description: "LZW-style compressor: streaming I/O, hash-table probes, sampled \
                          global counters",
        phenotype: "few hot store->load edges on globals with hit/miss path-dependent \
                        dependences; table inserts resolve their addresses late",
        builder: Builder::Static(compress),
    },
    Workload {
        name: "espresso",
        suite: Suite::Int92,
        description: "logic minimizer: pointer walks over cube lists, ~100-instruction tasks",
        phenotype: "an intermittent result-index recurrence; large tasks make each \
                        mis-speculation expensive, so synchronization pays a lot",
        builder: Builder::Static(espresso),
    },
    Workload {
        name: "gcc",
        suite: Suite::Int92,
        description: "compiler: irregular IR-node rewriting across many code paths",
        phenotype: "many static dependence edges with poor temporal locality — the \
                        workload where even large DDCs keep missing",
        builder: Builder::Static(gcc),
    },
    Workload {
        name: "sc",
        suite: Suite::Int92,
        description: "spreadsheet: cell recalculation with interpreter overhead",
        phenotype: "neighbor-cell dependences at task distances 1 and 8, plus \
                        late-addressed writes to referenced cells that punish WAIT",
        builder: Builder::Static(sc),
    },
    Workload {
        name: "xlisp",
        suite: Suite::Int92,
        description: "lisp interpreter: list traversal with sampled cons-cell allocation",
        phenotype: "a scorching free-list-head recurrence firing on a quarter of the \
                        tasks, buried in independent pointer-chasing work",
        builder: Builder::Static(xlisp),
    },
];

/// LZW-flavored compressor kernel. Per task (one input symbol): stream
/// one word of private input to output (independent work), hash-probe a
/// 512-entry table, take the hit or miss path, and insert into the table
/// *last* through a multiplicative rehash — so the insert's address is
/// the latest-resolving store in the task. Counter updates are sampled
/// (1/8 of each path) so the hot global edges fire intermittently.
pub fn compress(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    b.alloc("htab", 512);
    b.alloc("pad0", 24); // stagger bank alignment between arrays
    b.alloc("globals", 4); // free_code, in_count, out_count, checksum
    b.alloc("pad1", 4);
    alloc_random(&mut b, "inbuf", 256, 1 << 16, 0xc0);
    b.alloc("pad2", 12);
    b.alloc("outbuf", 256);
    b.la(Reg::S0, "htab");
    b.la(Reg::S1, "globals");
    b.la(Reg::S2, "inbuf");
    b.la(Reg::S3, "outbuf");
    b.li(Reg::S5, 509); // prime modulus for the insert rehash
    b.li(Reg::A6, 0); // prefix
    b.li(Reg::A4, 0); // stream index
    b.li(Reg::T0, scale.iterations(40_000));
    b.label("task");
    b.task();
    // Read the next input word (independent streaming) and copy it out;
    // the input symbol comes from the *data*, as in the real compress.
    b.andi(Reg::T3, Reg::A4, 254);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T4, Reg::S2, Reg::T3);
    b.ld(Reg::A0, Reg::T4, 0);
    b.ld(Reg::A1, Reg::T4, 8);
    b.add(Reg::A1, Reg::A0, Reg::A1);
    b.add(Reg::T4, Reg::S3, Reg::T3);
    b.sd(Reg::A1, Reg::T4, 0);
    b.addi(Reg::A4, Reg::A4, 1);
    b.xor(Reg::A7, Reg::A0, Reg::A4); // data-driven "entropy" word
    b.andi(Reg::T2, Reg::A7, 0x3f); // next input symbol (64-symbol alphabet)
                                    // key = prefix << 8 | symbol; probe at key % 509 so hits find what
                                    // the (late) insert below stored.
    b.slli(Reg::A5, Reg::A6, 8);
    b.or(Reg::A5, Reg::A5, Reg::T2);
    b.rem(Reg::T3, Reg::A5, Reg::S5);
    b.slli(Reg::T4, Reg::T3, 3);
    b.add(Reg::T4, Reg::S0, Reg::T4);
    b.ld(Reg::T5, Reg::T4, 0); // table probe
    b.li(Reg::A3, 0); // insert flag
    b.beq(Reg::T5, Reg::A5, "hit");
    // Miss path: remember to insert, sampled free_code bump.
    b.li(Reg::A3, 1);
    b.andi(Reg::T6, Reg::A7, 7);
    b.bne(Reg::T6, Reg::ZERO, "miss_nocount");
    b.ld(Reg::A2, Reg::S1, 0); // free_code (hot, sampled)
    b.addi(Reg::A2, Reg::A2, 1);
    b.sd(Reg::A2, Reg::S1, 0);
    b.label("miss_nocount");
    b.mv(Reg::A6, Reg::T2);
    b.j("cont");
    b.label("hit");
    b.andi(Reg::A6, Reg::T5, 0x3f); // follow the chain
    b.andi(Reg::T6, Reg::A7, 7);
    b.bne(Reg::T6, Reg::ZERO, "hit_nocount");
    b.ld(Reg::A2, Reg::S1, 8); // in_count (hot, sampled)
    b.addi(Reg::A2, Reg::A2, 1);
    b.sd(Reg::A2, Reg::S1, 8);
    b.label("hit_nocount");
    b.label("cont");
    // Checksum: shared by both paths, sampled at 1/16.
    b.andi(Reg::T6, Reg::A7, 15);
    b.bne(Reg::T6, Reg::ZERO, "no_cksum");
    b.ld(Reg::A2, Reg::S1, 24);
    b.xor(Reg::A2, Reg::A2, Reg::A5);
    b.sd(Reg::A2, Reg::S1, 24);
    b.label("no_cksum");
    // The table insert happens LAST, through a multiplicative rehash of
    // the key — its address is the latest-resolving store in the task,
    // which is what makes NEVER (wait for all store addresses) expensive.
    b.beq(Reg::A3, Reg::ZERO, "no_insert");
    b.rem(Reg::T4, Reg::A5, Reg::S5); // modulo-by-prime: 12-cycle address
    b.slli(Reg::T4, Reg::T4, 3);
    b.add(Reg::T4, Reg::S0, Reg::T4);
    b.sd(Reg::A5, Reg::T4, 0);
    b.label("no_insert");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("compress workload builds")
}

/// Cube-list minimizer kernel. Per task (~100 instructions): walk 12
/// nodes of a linked ring (independent loads), store the folded result to
/// a slot *addressed by the result itself* (a late-resolving store that
/// punishes NEVER), and — on a quarter of the tasks — read-modify-write
/// the shared result index (the intermittent hot recurrence).
pub fn espresso(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    alloc_linked_ring(&mut b, "cubes", 64, 3, 2, 0xe5);
    b.alloc("resglobals", 1); // shared result count
    b.alloc("results", 256);
    b.la(Reg::S2, "cubes");
    b.la(Reg::S3, "resglobals");
    b.la(Reg::S4, "results");
    b.li(Reg::S5, HASH_K);
    b.li(Reg::S6, 3);
    b.li(Reg::A6, 0); // task counter
    b.li(Reg::A3, 0); // claim phase counter (mod 3)
    b.li(Reg::T0, scale.iterations(8_000));
    b.label("task");
    b.task();
    // Walk start derived from the task counter (no serial walker chain).
    b.addi(Reg::A6, Reg::A6, 1);
    task_hash(&mut b, Reg::T1, Reg::A6, Reg::S5, Reg::T2);
    b.andi(Reg::A2, Reg::T1, 63);
    b.slli(Reg::T2, Reg::A2, 3);
    b.slli(Reg::T3, Reg::A2, 4);
    b.add(Reg::T2, Reg::T2, Reg::T3); // index * 24 (3-word nodes)
    b.add(Reg::A5, Reg::S2, Reg::T2);
    // Every 3rd task claims the shared count: the load happens HERE
    // (task start) and the store after the walk — a split
    // read-modify-write spanning ~90 instructions at a fixed task
    // distance of 3 (inside even a 4-stage window), the paper's
    // expensive espresso recurrence.
    b.addi(Reg::A3, Reg::A3, 1);
    b.bne(Reg::A3, Reg::S6, "no_claim_ld");
    b.mv(Reg::A3, Reg::ZERO);
    b.ld(Reg::T5, Reg::S3, 0);
    b.label("no_claim_ld");
    b.li(Reg::A0, -1); // AND-accumulator
    b.li(Reg::A1, 0); // OR-accumulator
    b.li(Reg::T2, 12); // nodes per task
    b.label("walk");
    b.ld(Reg::T3, Reg::A5, 0);
    b.ld(Reg::T4, Reg::A5, 8);
    b.and(Reg::A0, Reg::A0, Reg::T3);
    b.or(Reg::A1, Reg::A1, Reg::T4);
    b.xor(Reg::A0, Reg::A0, Reg::A1);
    b.ld(Reg::A5, Reg::A5, 16); // follow the ring
    b.addi(Reg::T2, Reg::T2, -1);
    b.bne(Reg::T2, Reg::ZERO, "walk");
    // Result slot addressed by the folded value: the store address is not
    // known until the walk completes.
    b.andi(Reg::T6, Reg::A0, 255);
    b.slli(Reg::T6, Reg::T6, 3);
    b.add(Reg::T6, Reg::S4, Reg::T6);
    b.sd(Reg::A0, Reg::T6, 0);
    // Publish the claimed count (second half of the split RMW). The
    // phase counter is zero exactly on claiming tasks.
    b.bne(Reg::A3, Reg::ZERO, "no_claim_st");
    b.addi(Reg::T5, Reg::T5, 1);
    b.sd(Reg::T5, Reg::S3, 0);
    b.label("no_claim_st");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("espresso workload builds")
}

/// IR-rewriting kernel. Per task: read three operand nodes early through
/// three static load PCs, compute through a multiply (so the rewritten
/// value lands late), then dispatch on the node kind to one of eight
/// distinct rewrite paths (eight static store PCs). 3 loads × 8 stores
/// over a small random node pool yields the paper's gcc phenotype: a
/// large static dependence set with poor temporal locality.
pub fn gcc(scale: Scale) -> Program {
    gcc_kernel(scale, 64, 3, 0x19cc)
}

/// The parameterized IR-rewriting kernel behind [`gcc`] (and the larger
/// `gcc95` variant in the SPEC95 suite): `nodes` must be a power of two.
///
/// # Panics
///
/// Panics if `nodes` is not a power of two.
pub fn gcc_kernel(scale: Scale, nodes: usize, rounds: i32, seed: i32) -> Program {
    assert!(nodes.is_power_of_two(), "node pool must be a power of two");
    let _ = rounds; // operand loads are unrolled below
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "nodes", nodes * 4, 1 << 20, 0x9cc);
    alloc_random(&mut b, "strtab", 1024, 1 << 12, 0x9cd);
    b.alloc("gccglobals", 1);
    b.la(Reg::S0, "nodes");
    b.la(Reg::S1, "gccglobals");
    b.la(Reg::S2, "strtab");
    b.li(Reg::S5, HASH_K);
    b.li(Reg::A6, seed); // task counter (seed offsets the sequence)
    b.li(Reg::T0, scale.iterations(12_000));
    let mask = (nodes - 1) as i32;
    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    task_hash(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    // Independent dilution: two string-table reads.
    b.andi(Reg::T1, Reg::A6, 1023);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S2, Reg::T1);
    b.ld(Reg::A4, Reg::T1, 0);
    b.xori(Reg::T1, Reg::A6, 512);
    b.andi(Reg::T1, Reg::T1, 1023);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S2, Reg::T1);
    b.ld(Reg::A5, Reg::T1, 0);
    // Read three operand nodes EARLY (three static load PCs)...
    b.srli(Reg::T3, Reg::A7, 3);
    b.andi(Reg::T3, Reg::T3, mask);
    b.slli(Reg::T3, Reg::T3, 5);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.ld(Reg::A0, Reg::T3, 0);
    b.srli(Reg::T4, Reg::A7, 13);
    b.andi(Reg::T4, Reg::T4, mask);
    b.slli(Reg::T4, Reg::T4, 5);
    b.add(Reg::T4, Reg::S0, Reg::T4);
    b.ld(Reg::A1, Reg::T4, 0);
    // The third operand's address is chased off the SECOND node's loaded
    // value — so the rewrite store below resolves its address late,
    // punishing NEVER.
    b.xor(Reg::T5, Reg::A7, Reg::A1);
    b.andi(Reg::T5, Reg::T5, mask);
    b.slli(Reg::T5, Reg::T5, 5);
    b.add(Reg::T5, Reg::S0, Reg::T5);
    b.ld(Reg::A2, Reg::T5, 0);
    // ...compute through a multiply (so the rewritten value lands LATE)...
    b.add(Reg::A3, Reg::A0, Reg::A1);
    b.xor(Reg::A3, Reg::A3, Reg::A2);
    b.add(Reg::A3, Reg::A3, Reg::A4);
    b.xor(Reg::A3, Reg::A3, Reg::A5);
    b.mul(Reg::A3, Reg::A3, Reg::A3);
    b.srli(Reg::A3, Reg::A3, 7);
    // ...then dispatch on the node kind to one of eight distinct rewrite
    // paths (eight static store PCs).
    b.andi(Reg::T2, Reg::A7, 7);
    for kind in 0..8 {
        let path = format!("path{kind}");
        if kind < 7 {
            b.beq(Reg::T2, Reg::ZERO, path.as_str());
            b.addi(Reg::T2, Reg::T2, -1);
        } else {
            b.j(path.as_str());
        }
    }
    for kind in 0..8u8 {
        b.label(&format!("path{kind}"));
        // Most rewrite paths write the chased node (late address); a
        // couple write the directly-indexed ones.
        let target = match kind {
            6 => Reg::T3,
            7 => Reg::T4,
            _ => Reg::T5,
        };
        match kind / 3 {
            0 => b.addi(Reg::A3, Reg::A3, kind as i32 + 1),
            1 => b.xori(Reg::A3, Reg::A3, 0x5a5),
            _ => b.ori(Reg::A3, Reg::A3, 1),
        };
        b.sd(Reg::A3, target, 0);
        b.j("joined");
    }
    b.label("joined");
    // Every 16th task touches a shared statistics word.
    b.andi(Reg::T6, Reg::A7, 15);
    b.bne(Reg::T6, Reg::ZERO, "skipstat");
    b.ld(Reg::T6, Reg::S1, 0);
    b.addi(Reg::T6, Reg::T6, 1);
    b.sd(Reg::T6, Reg::S1, 0);
    b.label("skipstat");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("gcc workload builds")
}

/// Spreadsheet recalculation kernel. Per task: interpreter-style metadata
/// reads (independent), a formula, and the cell store *through a loaded
/// cell pointer* (every task's store address resolves late — the behavior
/// that makes refusing to speculate expensive). One task in eight is a
/// dependent formula that reads the left neighbor (task distance 1) and
/// the row above (task distance 8).
pub fn sc(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    let cells = alloc_random(&mut b, "cells", 512, 1000, 0x5c);
    b.alloc("scpad", 12); // stagger bank alignment
    alloc_random(&mut b, "meta", 256, 1 << 8, 0x5d);
    b.alloc("scpad2", 4);
    // Cell pointer table: cell i is written through celltab[i], as a real
    // spreadsheet writes through its cell objects.
    let ptrs: Vec<u64> = (0..512).map(|i| cells + i * 8).collect();
    b.alloc_init("celltab", &ptrs);
    b.la(Reg::S0, "cells");
    b.la(Reg::S1, "meta");
    b.la(Reg::S2, "celltab");
    b.li(Reg::S5, HASH_K);
    b.li(Reg::A4, 16); // current cell index
    b.li(Reg::T0, scale.iterations(24_000));
    b.label("task");
    b.task();
    // Interpreter overhead: two independent metadata reads.
    b.andi(Reg::T1, Reg::A4, 255);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S1, Reg::T1);
    b.ld(Reg::A2, Reg::T1, 0);
    b.xori(Reg::T2, Reg::A4, 128);
    b.andi(Reg::T2, Reg::T2, 255);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.ld(Reg::A3, Reg::T2, 0);
    b.add(Reg::A2, Reg::A2, Reg::A3);
    // Formula kind from a task-counter hash: half the cells reference
    // their neighbors (the dependent kind), half are literal formulas.
    task_hash(&mut b, Reg::T3, Reg::A4, Reg::S5, Reg::T6);
    b.andi(Reg::T4, Reg::T3, 7);
    b.bne(Reg::T4, Reg::ZERO, "literal_formula");
    // Dependent kind: read the left neighbor (task distance 1) and the
    // row above (task distance 8), late in the task.
    b.addi(Reg::T1, Reg::A4, -1);
    b.andi(Reg::T1, Reg::T1, 511);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::A0, Reg::T1, 0);
    b.addi(Reg::T2, Reg::A4, -8);
    b.andi(Reg::T2, Reg::T2, 511);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S0, Reg::T2);
    b.ld(Reg::A1, Reg::T2, 0);
    b.mul(Reg::A2, Reg::A0, Reg::A1);
    b.srai(Reg::A2, Reg::A2, 5);
    b.j("store_cell");
    b.label("literal_formula");
    b.mv(Reg::A0, Reg::A2);
    b.mv(Reg::A1, Reg::A3);
    b.add(Reg::A2, Reg::A2, Reg::A3);
    b.addi(Reg::A2, Reg::A2, 1);
    b.label("store_cell");
    // Write the cell through its pointer, after a bounds clamp on the
    // computed value: the store address depends on both a loaded pointer
    // and the formula result, so it resolves at the end of the task.
    b.andi(Reg::T5, Reg::A4, 511);
    b.slli(Reg::T5, Reg::T5, 3);
    b.add(Reg::T5, Reg::S2, Reg::T5);
    b.ld(Reg::T5, Reg::T5, 0);
    b.slt(Reg::T6, Reg::A2, Reg::ZERO); // clamp slot for negative results
    b.slli(Reg::T6, Reg::T6, 3);
    b.add(Reg::T5, Reg::T5, Reg::T6);
    b.sd(Reg::A2, Reg::T5, 0);
    b.addi(Reg::A4, Reg::A4, 1);
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("sc workload builds")
}

/// Lisp-interpreter kernel. Per task: a five-hop pointer traversal over
/// the cell arena (independent, chained loads) and a helper call through
/// the stack; a quarter of the tasks additionally allocate a cons cell —
/// the scorching free-list-head recurrence (two loads and a store on one
/// address) plus a late-addressed payload write.
pub fn xlisp(scale: Scale) -> Program {
    let mut b = ProgramBuilder::new();
    let cells = alloc_linked_ring(&mut b, "cells", 128, 2, 1, 0x115);
    b.alloc_init("xlglobals", &[cells]); // free-list head
    b.alloc("intern", 64);
    b.la(Reg::S1, "xlglobals");
    b.la(Reg::S2, "cells");
    b.la(Reg::S3, "intern");
    b.li(Reg::S5, HASH_K);
    b.li(Reg::S6, 3);
    b.li(Reg::A6, 0); // task counter
    b.li(Reg::A4, 0); // allocation phase counter (mod 3)
    b.li(Reg::T0, scale.iterations(16_000));
    b.j("task");

    // fn mix(a0) -> a0: squares through the stack (call/return traffic).
    b.label("mix");
    b.addi(Reg::SP, Reg::SP, -16);
    b.sd(Reg::RA, Reg::SP, 0);
    b.sd(Reg::A0, Reg::SP, 8);
    b.mul(Reg::A0, Reg::A0, Reg::A0);
    b.ld(Reg::T6, Reg::SP, 8);
    b.add(Reg::A0, Reg::A0, Reg::T6);
    b.ld(Reg::RA, Reg::SP, 0);
    b.addi(Reg::SP, Reg::SP, 16);
    b.ret();

    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    task_hash(&mut b, Reg::T1, Reg::A6, Reg::S5, Reg::T2);
    // Every 3rd task allocates a cell. The hot free-list-head LOAD
    // happens here at the top of the task; the balancing head STORE
    // happens at the bottom — a split read-modify-write at a fixed task
    // distance of 3, the regular recurrence the paper's distance-tagged
    // synchronization captures perfectly (and blind speculation
    // violates, because the producer store lands ~30 instructions into
    // its task).
    b.addi(Reg::A4, Reg::A4, 1);
    b.bne(Reg::A4, Reg::S6, "no_alloc_ld");
    b.mv(Reg::A4, Reg::ZERO);
    b.ld(Reg::A1, Reg::S1, 0); // head (hot load, early)
    b.label("no_alloc_ld");
    // Independent work: five-hop traversal from a hashed start cell.
    b.andi(Reg::T2, Reg::T1, 127);
    b.slli(Reg::T2, Reg::T2, 4); // 2-word cells
    b.add(Reg::A5, Reg::S2, Reg::T2);
    for _ in 0..5 {
        b.ld(Reg::A5, Reg::A5, 8); // follow cdr
    }
    b.ld(Reg::A0, Reg::A5, 0); // read the car at the end of the chain
    b.call("mix");
    // Intern the result: the store address is a hash of the *computed*
    // value, so it resolves at the end of the task (late for NEVER).
    b.andi(Reg::T5, Reg::A0, 63);
    b.slli(Reg::T5, Reg::T5, 3);
    b.add(Reg::T5, Reg::S3, Reg::T5);
    b.sd(Reg::A0, Reg::T5, 0);
    // Allocation epilogue: pop the cell, fill it, push it back.
    b.bne(Reg::A4, Reg::ZERO, "no_alloc_st");
    b.ld(Reg::A2, Reg::A1, 8); // cdr -> next free
    b.sd(Reg::A0, Reg::A1, 0); // payload write (late address)
    b.sd(Reg::A2, Reg::A1, 8); // relink through itself
    b.sd(Reg::A1, Reg::S1, 0); // head store (hot, late)
    b.label("no_alloc_st");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("xlisp workload builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;
    use mds_ooo::{WindowAnalyzer, WindowConfig};

    fn profile(p: &Program) -> mds_ooo::WindowReport {
        let mut a = WindowAnalyzer::new(WindowConfig {
            window_sizes: vec![32, 256],
            ddc_sizes: vec![64],
        });
        Emulator::new(p).run_with(|d| a.observe(d)).unwrap();
        a.finish()
    }

    #[test]
    fn compress_has_hot_dependences_with_strong_locality() {
        let p = compress(Scale::Small);
        let r = profile(&p);
        let w = r.for_window(256).unwrap();
        assert!(w.misspeculations > 1000, "misspecs: {}", w.misspeculations);
        // Few static edges responsible for nearly everything.
        assert!(
            w.edges_covering(0.999) <= 64,
            "edges: {}",
            w.edges_covering(0.999)
        );
        assert!(w.ddc_miss_rate(64).unwrap().value() < 10.0);
    }

    #[test]
    fn compress_takes_both_paths() {
        let p = compress(Scale::Tiny);
        let mut e = Emulator::new(&p);
        e.run_with(|_| {}).unwrap();
        let globals = p.symbol("globals").unwrap();
        let free_code = e.state().mem.read_u64(globals);
        let in_count = e.state().mem.read_u64(globals + 8);
        assert!(free_code > 0, "no hash misses counted");
        assert!(in_count > 0, "no hash hits counted");
    }

    #[test]
    fn espresso_tasks_are_large() {
        let p = espresso(Scale::Tiny);
        let sum = Emulator::new(&p).run_with(|_| {}).unwrap();
        let per_task = sum.instructions as f64 / sum.tasks as f64;
        assert!((60.0..220.0).contains(&per_task), "task size {per_task}");
    }

    #[test]
    fn gcc_has_many_static_edges_and_poor_locality() {
        // Collisions are probabilistic; a full Small run gives the edge
        // census enough samples.
        let gcc_p = gcc(Scale::Small);
        let comp_p = compress(Scale::Small);
        let g = profile(&gcc_p);
        let c = profile(&comp_p);
        let g256 = g.for_window(256).unwrap();
        let c256 = c.for_window(256).unwrap();
        assert!(
            g256.static_edges() > 2 * c256.static_edges(),
            "gcc {} vs compress {}",
            g256.static_edges(),
            c256.static_edges()
        );
    }

    #[test]
    fn sc_dependences_grow_with_window() {
        let p = sc(Scale::Tiny);
        let r = profile(&p);
        let near = r.for_window(32).unwrap().misspeculations;
        let far = r.for_window(256).unwrap().misspeculations;
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn xlisp_free_list_stays_consistent() {
        let p = xlisp(Scale::Tiny);
        let mut e = Emulator::new(&p);
        e.run_with(|_| {}).unwrap();
        // The free-list head must still point into the cell arena.
        let head = e.state().mem.read_u64(p.symbol("xlglobals").unwrap());
        let cells = p.symbol("cells").unwrap();
        assert!(head >= cells && head < cells + 128 * 16, "head {head:#x}");
    }

    #[test]
    fn hot_edges_fire_on_a_fraction_of_loads() {
        // The dilution calibration: blind speculation should mis-speculate
        // on a few percent of committed loads, as in the paper — not on
        // every task.
        use mds_core::Policy;
        use mds_multiscalar::{MsConfig, Multiscalar};
        for (name, build) in [
            ("compress", compress as fn(Scale) -> Program),
            ("espresso", espresso),
            ("sc", sc),
            ("xlisp", xlisp),
        ] {
            let p = build(Scale::Tiny);
            let r = Multiscalar::new(MsConfig::paper(4, Policy::Always))
                .run(&p)
                .unwrap();
            let rate = r.misspec_per_committed_load();
            assert!(
                rate > 0.001 && rate < 0.25,
                "{name}: misspec/load {rate} out of the calibrated range"
            );
        }
    }
}
