//! Shared emission helpers for the synthetic workloads.

use mds_harness::rng::Rng;
use mds_isa::{ProgramBuilder, Reg};

/// Emits an xorshift64 step on `state` (must be seeded non-zero), using
/// `tmp` as scratch: `s ^= s<<13; s ^= s>>7; s ^= s<<17`.
///
/// This is the deterministic in-program randomness source every irregular
/// workload uses (3 shifts + 3 xors, 6 instructions).
pub fn xorshift(b: &mut ProgramBuilder, state: Reg, tmp: Reg) {
    b.slli(tmp, state, 13);
    b.xor(state, state, tmp);
    b.srli(tmp, state, 7);
    b.xor(state, state, tmp);
    b.slli(tmp, state, 17);
    b.xor(state, state, tmp);
}

/// Allocates `words` data words named `name`, initialized with
/// deterministic pseudo-random values bounded by `bound` (or full-range
/// when `bound == 0`), from the given seed.
pub fn alloc_random(
    b: &mut ProgramBuilder,
    name: &str,
    words: usize,
    bound: u64,
    seed: u64,
) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let values: Vec<u64> = (0..words)
        .map(|_| {
            if bound == 0 {
                rng.gen::<u64>()
            } else {
                rng.gen_range(0..bound)
            }
        })
        .collect();
    b.alloc_init(name, &values)
}

/// Allocates a singly linked ring of `nodes` records of `node_words`
/// words each; word `next_slot` of each node holds the address of the
/// next node (the last links back to the first). Other words are
/// pseudo-random from `seed`. Returns the base address.
pub fn alloc_linked_ring(
    b: &mut ProgramBuilder,
    name: &str,
    nodes: usize,
    node_words: usize,
    next_slot: usize,
    seed: u64,
) -> u64 {
    let mut rng = Rng::seed_from_u64(seed);
    let base = b.alloc(name, nodes * node_words);
    for i in 0..nodes {
        let node = base + (i * node_words * 8) as u64;
        let next = base + (((i + 1) % nodes) * node_words * 8) as u64;
        for w in 0..node_words {
            let addr = node + (w * 8) as u64;
            if w == next_slot {
                b.init_word(addr, next);
            } else {
                b.init_word(addr, rng.gen_range(1..1 << 32));
            }
        }
    }
    base
}

/// Emits the standard countdown-task-loop epilogue:
/// `iters -= 1; if iters != 0 goto head; halt`.
pub fn loop_epilogue(b: &mut ProgramBuilder, iters: Reg, head: &str) {
    b.addi(iters, iters, -1);
    b.bne(iters, Reg::ZERO, head);
    b.halt();
}

/// Seeds `reg` with a non-zero constant for the in-program xorshift.
pub fn seed_rng(b: &mut ProgramBuilder, reg: Reg, seed: i32) {
    b.li(reg, if seed == 0 { 88_172_645 } else { seed });
}

/// Emits a per-task hash: `dst = mix(counter * K)` where `konst` holds a
/// Knuth-style multiplier loaded once in the prologue.
///
/// Workloads use this instead of a serial cross-task xorshift chain when
/// the randomness must not serialize task execution: the task counter
/// advances with a single `addi` per task, so consecutive tasks can still
/// overlap, while `dst` varies pseudo-randomly per task. (Within a task,
/// chaining further [`xorshift`] steps off `dst` is fine — intra-task
/// serialization does not block other tasks.)
pub fn task_hash(b: &mut ProgramBuilder, dst: Reg, counter: Reg, konst: Reg, tmp: Reg) {
    b.mul(dst, counter, konst);
    b.srli(tmp, dst, 17);
    b.xor(dst, dst, tmp);
    b.srli(tmp, dst, 9);
    b.xor(dst, dst, tmp);
}

/// The multiplier for [`task_hash`] (fits in a positive `i32`).
pub const HASH_K: i32 = 0x7ead_beef;

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;
    use mds_isa::Reg;

    #[test]
    fn xorshift_produces_varied_nonzero_values() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc("out", 8);
        b.la(Reg::S0, "out");
        seed_rng(&mut b, Reg::A7, 0);
        for i in 0..8 {
            xorshift(&mut b, Reg::A7, Reg::T1);
            b.sd(Reg::A7, Reg::S0, i * 8);
        }
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run().unwrap();
        let vals: Vec<u64> = (0..8)
            .map(|i| e.state().mem.read_u64(out + i * 8))
            .collect();
        assert!(vals.iter().all(|&v| v != 0));
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            8,
            "xorshift must not cycle immediately: {vals:?}"
        );
    }

    #[test]
    fn alloc_random_is_bounded_and_deterministic() {
        let mut b1 = ProgramBuilder::new();
        let a1 = alloc_random(&mut b1, "r", 64, 100, 7);
        b1.halt();
        let p1 = b1.build().unwrap();
        let mut b2 = ProgramBuilder::new();
        let a2 = alloc_random(&mut b2, "r", 64, 100, 7);
        b2.halt();
        let p2 = b2.build().unwrap();
        assert_eq!(a1, a2);
        assert_eq!(
            p1.initial_data().collect::<Vec<_>>(),
            p2.initial_data().collect::<Vec<_>>()
        );
        for (_, v) in p1.initial_data() {
            assert!(v < 100);
        }
    }

    #[test]
    fn linked_ring_cycles_through_all_nodes() {
        let mut b = ProgramBuilder::new();
        let base = alloc_linked_ring(&mut b, "ring", 5, 3, 2, 9);
        b.halt();
        let p = b.build().unwrap();
        let e = {
            let mut e = Emulator::new(&p);
            e.run().unwrap();
            e
        };
        // Follow next pointers from the base; must return after 5 hops.
        let mut cur = base;
        for _ in 0..5 {
            cur = e.state().mem.read_u64(cur + 16);
        }
        assert_eq!(cur, base);
    }

    #[test]
    fn loop_epilogue_counts_down() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 5);
        b.li(Reg::A0, 0);
        b.label("head");
        b.addi(Reg::A0, Reg::A0, 1);
        loop_epilogue(&mut b, Reg::T0, "head");
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run().unwrap();
        assert_eq!(e.state().reg(Reg::A0), 5);
    }
}
