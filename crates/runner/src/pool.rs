//! A work-stealing scoped-thread pool over indexed tasks.
//!
//! The pool is deliberately tiny: experiment grids are bags of coarse,
//! independent jobs (each one a full simulation), so the scheduler only
//! needs to keep every core busy and let fast workers steal from slow
//! ones. Each worker owns a deque seeded with a contiguous chunk of the
//! index space; it pops from the front of its own deque, refills from a
//! global injector when it runs dry, and steals from the *back* of a
//! victim's deque as a last resort (stealing the opposite end keeps the
//! owner and the thief off the same cache lines of work).
//!
//! Determinism does not come from the schedule — completion order is
//! whatever it is — but from [`run_indexed`] returning results **in index
//! order**, so callers never observe the schedule.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks a mutex, recovering from poisoning.
///
/// Every lock in this crate guards plain bookkeeping (deques of indices,
/// counter maps) whose invariants hold between statements, so a panic on
/// another thread never leaves the data half-updated in a way later
/// readers could observe. Recovering keeps one panicking job from
/// cascading into a confusing `PoisonError` abort on every other worker.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How many indices a dry worker pulls from the injector at once.
///
/// Batching amortizes the injector lock; a small batch keeps the tail of
/// the run stealable.
const INJECTOR_BATCH: usize = 4;

/// Per-worker execution accounting for the end-of-run utilization report.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Number of workers that ran (1 for a serial run).
    pub workers: usize,
    /// Busy wall-time per worker, in nanoseconds.
    pub busy_ns: Vec<u128>,
    /// Jobs executed per worker.
    pub executed: Vec<u64>,
    /// Jobs a worker obtained by stealing from a sibling's deque.
    pub steals: u64,
}

impl PoolReport {
    /// Total busy nanoseconds across all workers.
    pub fn total_busy_ns(&self) -> u128 {
        self.busy_ns.iter().sum()
    }
}

/// Parses a worker-count string (a `--jobs` value or `MDS_JOBS`).
///
/// Strict: rejects zero, empty, negative, and non-numeric input with a
/// message suitable for a usage error. Surrounding whitespace is allowed.
pub fn parse_jobs(text: &str) -> Result<usize, String> {
    match text.trim().parse::<usize>() {
        Ok(0) => Err(format!("job count must be at least 1, got '{text}'")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid job count '{text}' (expected a positive integer)"
        )),
    }
}

/// Resolves the worker count from, in priority order: an explicit request
/// (e.g. `--jobs N`), the `MDS_JOBS` environment variable, and the
/// machine's available parallelism.
///
/// Unlike [`job_count`], a malformed or zero `MDS_JOBS` is an error
/// rather than a silent fallback, so callers with a user-facing surface
/// (the `repro` CLI, `mds-serve`) can refuse bad configuration loudly.
pub fn try_job_count(explicit: Option<usize>) -> Result<usize, String> {
    if let Some(n) = explicit {
        return parse_jobs(&n.to_string()).map_err(|e| format!("--jobs: {e}"));
    }
    if let Ok(raw) = std::env::var("MDS_JOBS") {
        return parse_jobs(&raw).map_err(|e| format!("MDS_JOBS: {e}"));
    }
    Ok(std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1))
}

/// Resolves the worker count from, in priority order: an explicit request
/// (e.g. `--jobs N`), the `MDS_JOBS` environment variable, and the
/// machine's available parallelism. Always at least 1.
///
/// Lenient: malformed `MDS_JOBS` values fall through to the next source.
/// Front-ends that should reject bad input instead use [`try_job_count`].
pub fn job_count(explicit: Option<usize>) -> usize {
    let from_env = || {
        std::env::var("MDS_JOBS")
            .ok()
            .and_then(|v| parse_jobs(&v).ok())
    };
    let resolved = explicit.or_else(from_env).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    resolved.max(1)
}

/// One job's panic, captured by [`try_run_indexed`]: which index failed
/// and the panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The index whose closure panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the common case), else a
    /// placeholder.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct Shared {
    injector: Mutex<VecDeque<usize>>,
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Shared {
    /// Next index for `who`: own front, then an injector batch, then a
    /// steal from the back of some sibling's deque.
    fn next(&self, who: usize) -> Option<(usize, bool)> {
        if let Some(idx) = lock(&self.deques[who]).pop_front() {
            return Some((idx, false));
        }
        {
            let mut injector = lock(&self.injector);
            if let Some(idx) = injector.pop_front() {
                let refill: Vec<usize> = (1..INJECTOR_BATCH)
                    .map_while(|_| injector.pop_front())
                    .collect();
                drop(injector);
                if !refill.is_empty() {
                    lock(&self.deques[who]).extend(refill);
                }
                return Some((idx, false));
            }
        }
        for victim in (0..self.deques.len()).filter(|&v| v != who) {
            if let Some(idx) = lock(&self.deques[victim]).pop_back() {
                return Some((idx, true));
            }
        }
        None
    }
}

/// Runs `f(0..count)` on up to `workers` threads and returns the results
/// **in index order**, plus per-worker accounting.
///
/// With `workers <= 1` (or a single task) everything runs inline on the
/// caller's thread — no threads are spawned, so `--jobs 1` is genuinely
/// serial, not "parallel machinery with one worker".
///
/// # Panics
///
/// Panics with a labeled message if any `f(idx)` panicked; every other
/// index still ran to completion first. Callers that must survive a
/// panicking job use [`try_run_indexed`].
pub fn run_indexed<T, F>(workers: usize, count: usize, f: F) -> (Vec<T>, PoolReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (slots, report) = try_run_indexed(workers, count, f);
    let results: Vec<T> = slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|p| panic!("{p}")))
        .collect();
    (results, report)
}

/// Like [`run_indexed`], but a panic in `f(idx)` fails only index `idx`:
/// its slot carries the captured [`JobPanic`] while every other index
/// still produces its value.
///
/// This is what keeps one bad job from poisoning the pool's locks and
/// cascading an abort across the whole batch — long-lived callers (the
/// serving subsystem) report the failed job and keep running.
pub fn try_run_indexed<T, F>(
    workers: usize,
    count: usize,
    f: F,
) -> (Vec<Result<T, JobPanic>>, PoolReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let guarded = |idx: usize| -> Result<T, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| f(idx))).map_err(|payload| JobPanic {
            index: idx,
            message: panic_message(payload),
        })
    };

    if workers <= 1 || count <= 1 {
        let start = Instant::now();
        let results: Vec<Result<T, JobPanic>> = (0..count).map(guarded).collect();
        let report = PoolReport {
            workers: 1,
            busy_ns: vec![start.elapsed().as_nanos()],
            executed: vec![count as u64],
            steals: 0,
        };
        return (results, report);
    }

    let workers = workers.min(count);
    // Seed each worker with a contiguous chunk; the remainder feeds the
    // injector so early finishers have somewhere cheap to look first.
    let chunk = count / workers;
    let seeded = chunk * workers;
    let shared = Shared {
        injector: Mutex::new((seeded..count).collect()),
        deques: (0..workers)
            .map(|w| Mutex::new((w * chunk..(w + 1) * chunk).collect()))
            .collect(),
    };

    let mut slots: Vec<Option<Result<T, JobPanic>>> = (0..count).map(|_| None).collect();
    let mut busy_ns = vec![0u128; workers];
    let mut executed = vec![0u64; workers];
    let mut steals = 0u64;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|who| {
                let shared = &shared;
                let guarded = &guarded;
                scope.spawn(move || {
                    let mut out: Vec<(usize, Result<T, JobPanic>)> = Vec::new();
                    let mut busy = 0u128;
                    let mut stolen = 0u64;
                    while let Some((idx, was_steal)) = shared.next(who) {
                        let start = Instant::now();
                        let value = guarded(idx);
                        busy += start.elapsed().as_nanos();
                        stolen += u64::from(was_steal);
                        out.push((idx, value));
                    }
                    (out, busy, stolen)
                })
            })
            .collect();
        for (who, handle) in handles.into_iter().enumerate() {
            let (out, busy, stolen) = handle.join().expect("worker thread never panics");
            busy_ns[who] = busy;
            executed[who] = out.len() as u64;
            steals += stolen;
            for (idx, value) in out {
                slots[idx] = Some(value);
            }
        }
    });

    let results: Vec<Result<T, JobPanic>> = slots
        .into_iter()
        .map(|s| s.expect("every index executed exactly once"))
        .collect();
    let report = PoolReport {
        workers,
        busy_ns,
        executed,
        steals,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let f = |i: usize| i * i;
        let (serial, _) = run_indexed(1, 37, f);
        let (parallel, report) = run_indexed(4, 37, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel, (0..37).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(report.executed.iter().sum::<u64>(), 37);
        assert_eq!(report.workers, 4);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let (_, report) = run_indexed(8, 100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        assert_eq!(report.executed.iter().sum::<u64>(), 100);
    }

    #[test]
    fn worker_count_never_exceeds_task_count() {
        let (results, report) = run_indexed(16, 3, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert!(report.workers <= 3);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let (results, report) = run_indexed(4, 0, |i| i);
        assert!(results.is_empty());
        assert_eq!(report.executed.iter().sum::<u64>(), 0);
    }

    #[test]
    fn job_count_clamps_to_one() {
        assert_eq!(job_count(Some(0)), 1);
        assert_eq!(job_count(Some(3)), 3);
        assert!(job_count(None) >= 1);
    }

    #[test]
    fn parse_jobs_is_strict() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
        assert!(parse_jobs("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs("-2").unwrap_err().contains("invalid"));
        assert!(parse_jobs("four").unwrap_err().contains("invalid"));
        assert!(parse_jobs("").unwrap_err().contains("invalid"));
        assert!(parse_jobs("3.5").unwrap_err().contains("invalid"));
    }

    #[test]
    fn try_job_count_accepts_explicit_requests() {
        assert_eq!(try_job_count(Some(2)), Ok(2));
        assert!(try_job_count(Some(0)).unwrap_err().starts_with("--jobs"));
    }

    #[test]
    fn one_panicking_job_fails_only_its_own_slot() {
        let (results, report) = try_run_indexed(4, 20, |i| {
            if i == 7 {
                panic!("job 7 exploded");
            }
            i * 10
        });
        assert_eq!(results.len(), 20);
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, 7);
                assert!(p.message.contains("exploded"), "{p}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10, "index {i}");
            }
        }
        assert_eq!(report.executed.iter().sum::<u64>(), 20);
    }

    #[test]
    fn serial_path_also_isolates_panics() {
        let (results, _) = try_run_indexed(1, 3, |i| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok(), "indices after the panic still run");
    }

    #[test]
    #[should_panic(expected = "job 2 panicked: kapow")]
    fn run_indexed_propagates_a_labeled_panic() {
        let _ = run_indexed(2, 4, |i| {
            if i == 2 {
                panic!("kapow");
            }
            i
        });
    }
}
