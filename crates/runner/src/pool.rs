//! A work-stealing scoped-thread pool over indexed tasks.
//!
//! The pool is deliberately tiny: experiment grids are bags of coarse,
//! independent jobs (each one a full simulation), so the scheduler only
//! needs to keep every core busy and let fast workers steal from slow
//! ones. Each worker owns a deque seeded with a contiguous chunk of the
//! index space; it pops from the front of its own deque, refills from a
//! global injector when it runs dry, and steals from the *back* of a
//! victim's deque as a last resort (stealing the opposite end keeps the
//! owner and the thief off the same cache lines of work).
//!
//! Determinism does not come from the schedule — completion order is
//! whatever it is — but from [`run_indexed`] returning results **in index
//! order**, so callers never observe the schedule.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// How many indices a dry worker pulls from the injector at once.
///
/// Batching amortizes the injector lock; a small batch keeps the tail of
/// the run stealable.
const INJECTOR_BATCH: usize = 4;

/// Per-worker execution accounting for the end-of-run utilization report.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Number of workers that ran (1 for a serial run).
    pub workers: usize,
    /// Busy wall-time per worker, in nanoseconds.
    pub busy_ns: Vec<u128>,
    /// Jobs executed per worker.
    pub executed: Vec<u64>,
    /// Jobs a worker obtained by stealing from a sibling's deque.
    pub steals: u64,
}

impl PoolReport {
    /// Total busy nanoseconds across all workers.
    pub fn total_busy_ns(&self) -> u128 {
        self.busy_ns.iter().sum()
    }
}

/// Resolves the worker count from, in priority order: an explicit request
/// (e.g. `--jobs N`), the `MDS_JOBS` environment variable, and the
/// machine's available parallelism. Always at least 1.
pub fn job_count(explicit: Option<usize>) -> usize {
    let from_env = || {
        std::env::var("MDS_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    };
    let resolved = explicit.or_else(from_env).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    resolved.max(1)
}

struct Shared {
    injector: Mutex<VecDeque<usize>>,
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl Shared {
    /// Next index for `who`: own front, then an injector batch, then a
    /// steal from the back of some sibling's deque.
    fn next(&self, who: usize) -> Option<(usize, bool)> {
        if let Some(idx) = self.deques[who].lock().unwrap().pop_front() {
            return Some((idx, false));
        }
        {
            let mut injector = self.injector.lock().unwrap();
            if let Some(idx) = injector.pop_front() {
                let refill: Vec<usize> = (1..INJECTOR_BATCH)
                    .map_while(|_| injector.pop_front())
                    .collect();
                drop(injector);
                if !refill.is_empty() {
                    self.deques[who].lock().unwrap().extend(refill);
                }
                return Some((idx, false));
            }
        }
        for victim in (0..self.deques.len()).filter(|&v| v != who) {
            if let Some(idx) = self.deques[victim].lock().unwrap().pop_back() {
                return Some((idx, true));
            }
        }
        None
    }
}

/// Runs `f(0..count)` on up to `workers` threads and returns the results
/// **in index order**, plus per-worker accounting.
///
/// With `workers <= 1` (or a single task) everything runs inline on the
/// caller's thread — no threads are spawned, so `--jobs 1` is genuinely
/// serial, not "parallel machinery with one worker".
///
/// # Panics
///
/// Propagates a panic from `f` after the scope unwinds its workers.
pub fn run_indexed<T, F>(workers: usize, count: usize, f: F) -> (Vec<T>, PoolReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || count <= 1 {
        let start = Instant::now();
        let results: Vec<T> = (0..count).map(&f).collect();
        let report = PoolReport {
            workers: 1,
            busy_ns: vec![start.elapsed().as_nanos()],
            executed: vec![count as u64],
            steals: 0,
        };
        return (results, report);
    }

    let workers = workers.min(count);
    // Seed each worker with a contiguous chunk; the remainder feeds the
    // injector so early finishers have somewhere cheap to look first.
    let chunk = count / workers;
    let seeded = chunk * workers;
    let shared = Shared {
        injector: Mutex::new((seeded..count).collect()),
        deques: (0..workers)
            .map(|w| Mutex::new((w * chunk..(w + 1) * chunk).collect()))
            .collect(),
    };

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let mut busy_ns = vec![0u128; workers];
    let mut executed = vec![0u64; workers];
    let mut steals = 0u64;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|who| {
                let shared = &shared;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    let mut busy = 0u128;
                    let mut stolen = 0u64;
                    while let Some((idx, was_steal)) = shared.next(who) {
                        let start = Instant::now();
                        let value = f(idx);
                        busy += start.elapsed().as_nanos();
                        stolen += u64::from(was_steal);
                        out.push((idx, value));
                    }
                    (out, busy, stolen)
                })
            })
            .collect();
        for (who, handle) in handles.into_iter().enumerate() {
            let (out, busy, stolen) = handle.join().expect("worker panicked");
            busy_ns[who] = busy;
            executed[who] = out.len() as u64;
            steals += stolen;
            for (idx, value) in out {
                slots[idx] = Some(value);
            }
        }
    });

    let results: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("every index executed exactly once"))
        .collect();
    let report = PoolReport {
        workers,
        busy_ns,
        executed,
        steals,
    };
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let f = |i: usize| i * i;
        let (serial, _) = run_indexed(1, 37, f);
        let (parallel, report) = run_indexed(4, 37, f);
        assert_eq!(serial, parallel);
        assert_eq!(parallel, (0..37).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(report.executed.iter().sum::<u64>(), 37);
        assert_eq!(report.workers, 4);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        let (_, report) = run_indexed(8, 100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        assert_eq!(report.executed.iter().sum::<u64>(), 100);
    }

    #[test]
    fn worker_count_never_exceeds_task_count() {
        let (results, report) = run_indexed(16, 3, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert!(report.workers <= 3);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let (results, report) = run_indexed(4, 0, |i| i);
        assert!(results.is_empty());
        assert_eq!(report.executed.iter().sum::<u64>(), 0);
    }

    #[test]
    fn job_count_clamps_to_one() {
        assert_eq!(job_count(Some(0)), 1);
        assert_eq!(job_count(Some(3)), 3);
        assert!(job_count(None) >= 1);
    }
}
