//! Lossless wire codecs for [`Job`]s and [`JobOutput`]s.
//!
//! The cluster tier fans a grid's cells out to backends as HTTP bodies
//! and merges the partial results back into one document; this module is
//! that serialization seam. It is deliberately distinct from
//! [`JobOutput::to_json`]: that rendering is a *derived view* (it
//! collapses window edge counts into coverage metrics and adds computed
//! ratios) and feeds identity-gated artifacts, while this codec must
//! round-trip every field a result table could consume. Everything on
//! the wire is integers and strings — no floats — so results decoded
//! from a remote backend are indistinguishable from locally-computed
//! ones and downstream documents stay byte-identical.
//!
//! Two deliberate lossy corners, neither observable by any result
//! document:
//!
//! - A window report's `edge_counts` maps static [`DepEdge`]s to
//!   mis-speculation counts, but every consumer (`static_edges`,
//!   `edges_covering`) depends only on the *multiset of counts*. The
//!   codec ships the counts sorted descending and resynthesizes
//!   distinct placeholder edges on decode.
//! - `dependence_distances` is observability-only (never enters a
//!   table); it decodes as an empty histogram.

use crate::job::{Job, JobKind, JobOutput};
use mds_core::{DepEdge, MdptConfig, Policy, PredictionBreakdown, TagScheme};
use mds_emu::TraceSummary;
use mds_harness::json::{DecodeError, Json, ToJson};
use mds_mem::{BankedCacheConfig, CacheConfig, CacheStats};
use mds_multiscalar::{FuLatencies, MsConfig, MsResult};
use mds_ooo::{OooConfig, OooResult, WindowConfig, WindowReport, WindowStats};
use mds_sim::stats::Histogram;
use mds_workloads::Scale;

/// Wire name of a [`Scale`] (`mds-bench` uses the same names).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

fn scale_from_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Encodes one job, config and all, as a self-contained JSON object.
pub fn encode_job(job: &Job) -> Json {
    let (kind, config) = match &job.kind {
        JobKind::Multiscalar(c) => ("ms", encode_ms_config(c)),
        JobKind::Window(c) => ("window", encode_window_config(c)),
        JobKind::Superscalar(c) => ("ooo", encode_ooo_config(c)),
        JobKind::Summary => ("summary", Json::object()),
    };
    Json::object()
        .field("id", job.id.as_str())
        .field("workload", job.workload.name)
        .field("scale", scale_name(job.scale))
        .field("kind", kind)
        .field("config", config)
}

/// Decodes a job encoded by [`encode_job`]. The workload is resolved
/// through the registry by name, so decoding also validates that this
/// process knows the workload (static suites and WDL registrations
/// alike).
pub fn decode_job(v: &Json) -> Result<Job, DecodeError> {
    let id: String = v.field_as("id")?;
    let workload_name: String = v.field_as("workload")?;
    let workload = mds_workloads::by_name(&workload_name).ok_or_else(|| {
        DecodeError::new(format!("unknown workload '{workload_name}'")).in_field("workload")
    })?;
    let scale_str: String = v.field_as("scale")?;
    let scale = scale_from_name(&scale_str).ok_or_else(|| {
        DecodeError::new(format!(
            "unknown scale '{scale_str}' (expected tiny|small|full)"
        ))
        .in_field("scale")
    })?;
    let kind_str: String = v.field_as("kind")?;
    let config = v.required("config")?;
    let kind = match kind_str.as_str() {
        "ms" => JobKind::Multiscalar(decode_ms_config(config).map_err(|e| e.in_field("config"))?),
        "window" => {
            JobKind::Window(decode_window_config(config).map_err(|e| e.in_field("config"))?)
        }
        "ooo" => JobKind::Superscalar(decode_ooo_config(config).map_err(|e| e.in_field("config"))?),
        "summary" => JobKind::Summary,
        other => {
            return Err(DecodeError::new(format!(
                "unknown job kind '{other}' (expected ms|window|ooo|summary)"
            ))
            .in_field("kind"))
        }
    };
    Ok(Job {
        id,
        workload,
        scale,
        kind,
    })
}

fn policy_field(v: &Json, key: &str) -> Result<Policy, DecodeError> {
    let name: String = v.field_as(key)?;
    name.parse::<Policy>()
        .map_err(|e| DecodeError::new(e.to_string()).in_field(key))
}

fn encode_cache_config(c: &CacheConfig) -> Json {
    Json::Array(vec![
        c.size_bytes.to_json(),
        c.ways.to_json(),
        c.block_bytes.to_json(),
    ])
}

fn decode_cache_config(v: &Json) -> Result<CacheConfig, DecodeError> {
    let (size_bytes, ways, block_bytes): (usize, usize, usize) = v.decode()?;
    Ok(CacheConfig {
        size_bytes,
        ways,
        block_bytes,
    })
}

fn encode_ms_config(c: &MsConfig) -> Json {
    let l = &c.latencies;
    Json::object()
        .field("stages", c.stages)
        .field("policy", c.policy)
        .field("issue_width", c.issue_width)
        .field("fetch_width", c.fetch_width)
        .field("window", c.window)
        .field("simple_int_units", c.simple_int_units)
        .field("complex_int_units", c.complex_int_units)
        .field("fp_units", c.fp_units)
        .field("branch_units", c.branch_units)
        .field("mem_units", c.mem_units)
        .field(
            "latencies",
            vec![
                l.simple_int,
                l.int_mul,
                l.int_div,
                l.fp_add,
                l.fp_mul,
                l.fp_div,
                l.fp_sqrt,
                l.fp_misc,
                l.branch,
            ],
        )
        .field("icache", encode_cache_config(&c.icache))
        .field(
            "dcache",
            Json::object()
                .field("banks", c.dcache.banks)
                .field("bank_config", encode_cache_config(&c.dcache.bank_config))
                .field("hit_latency", c.dcache.hit_latency)
                .field("fill_words", c.dcache.fill_words),
        )
        .field("ring_latency", c.ring_latency)
        .field("squash_penalty", c.squash_penalty)
        .field("mispredict_penalty", c.mispredict_penalty)
        .field("descriptor_cache", c.descriptor_cache)
        .field("descriptor_miss_penalty", c.descriptor_miss_penalty)
        .field("path_depth", c.path_depth)
        .field(
            "mdpt",
            vec![
                c.mdpt.capacity as u64,
                u64::from(c.mdpt.counter_bits),
                u64::from(c.mdpt.threshold),
                u64::from(c.mdpt.initial),
            ],
        )
        .field(
            "tagging",
            match c.tagging {
                TagScheme::DependenceDistance => "dependence_distance",
                TagScheme::DataAddress => "data_address",
            },
        )
        .field("signal_latency", c.signal_latency)
        .field("ddc_sizes", c.ddc_sizes.clone())
}

fn decode_ms_config(v: &Json) -> Result<MsConfig, DecodeError> {
    let l: Vec<u64> = v.field_as("latencies")?;
    if l.len() != 9 {
        return Err(
            DecodeError::new(format!("expected 9 latencies, found {}", l.len()))
                .in_field("latencies"),
        );
    }
    let latencies = FuLatencies {
        simple_int: l[0],
        int_mul: l[1],
        int_div: l[2],
        fp_add: l[3],
        fp_mul: l[4],
        fp_div: l[5],
        fp_sqrt: l[6],
        fp_misc: l[7],
        branch: l[8],
    };
    let m: Vec<u64> = v.field_as("mdpt")?;
    if m.len() != 4 {
        return Err(
            DecodeError::new(format!("expected 4 mdpt fields, found {}", m.len())).in_field("mdpt"),
        );
    }
    let mdpt = MdptConfig {
        capacity: m[0] as usize,
        counter_bits: m[1] as u8,
        threshold: m[2] as u16,
        initial: m[3] as u16,
    };
    let tagging_str: String = v.field_as("tagging")?;
    let tagging = match tagging_str.as_str() {
        "dependence_distance" => TagScheme::DependenceDistance,
        "data_address" => TagScheme::DataAddress,
        other => {
            return Err(
                DecodeError::new(format!("unknown tagging scheme '{other}'")).in_field("tagging"),
            )
        }
    };
    let dcache = v.required("dcache")?;
    Ok(MsConfig {
        stages: v.field_as("stages")?,
        policy: policy_field(v, "policy")?,
        issue_width: v.field_as("issue_width")?,
        fetch_width: v.field_as("fetch_width")?,
        window: v.field_as("window")?,
        simple_int_units: v.field_as("simple_int_units")?,
        complex_int_units: v.field_as("complex_int_units")?,
        fp_units: v.field_as("fp_units")?,
        branch_units: v.field_as("branch_units")?,
        mem_units: v.field_as("mem_units")?,
        latencies,
        icache: decode_cache_config(v.required("icache")?).map_err(|e| e.in_field("icache"))?,
        dcache: BankedCacheConfig {
            banks: dcache.field_as("banks").map_err(|e| e.in_field("dcache"))?,
            bank_config: decode_cache_config(dcache.required("bank_config")?)
                .map_err(|e| e.in_field("dcache"))?,
            hit_latency: dcache
                .field_as("hit_latency")
                .map_err(|e| e.in_field("dcache"))?,
            fill_words: dcache
                .field_as("fill_words")
                .map_err(|e| e.in_field("dcache"))?,
        },
        ring_latency: v.field_as("ring_latency")?,
        squash_penalty: v.field_as("squash_penalty")?,
        mispredict_penalty: v.field_as("mispredict_penalty")?,
        descriptor_cache: v.field_as("descriptor_cache")?,
        descriptor_miss_penalty: v.field_as("descriptor_miss_penalty")?,
        path_depth: v.field_as("path_depth")?,
        mdpt,
        tagging,
        signal_latency: v.field_as("signal_latency")?,
        ddc_sizes: v.field_as("ddc_sizes")?,
    })
}

fn encode_window_config(c: &WindowConfig) -> Json {
    Json::object()
        .field("window_sizes", c.window_sizes.clone())
        .field("ddc_sizes", c.ddc_sizes.clone())
}

fn decode_window_config(v: &Json) -> Result<WindowConfig, DecodeError> {
    Ok(WindowConfig {
        window_sizes: v.field_as("window_sizes")?,
        ddc_sizes: v.field_as("ddc_sizes")?,
    })
}

fn encode_ooo_config(c: &OooConfig) -> Json {
    Json::object()
        .field("window", c.window)
        .field("dispatch_width", c.dispatch_width)
        .field("mem_ports", c.mem_ports)
        .field("mem_latency", c.mem_latency)
        .field("squash_penalty", c.squash_penalty)
        .field("policy", c.policy)
        .field("mdpt_entries", c.mdpt_entries)
}

fn decode_ooo_config(v: &Json) -> Result<OooConfig, DecodeError> {
    Ok(OooConfig {
        window: v.field_as("window")?,
        dispatch_width: v.field_as("dispatch_width")?,
        mem_ports: v.field_as("mem_ports")?,
        mem_latency: v.field_as("mem_latency")?,
        squash_penalty: v.field_as("squash_penalty")?,
        policy: policy_field(v, "policy")?,
        mdpt_entries: v.field_as("mdpt_entries")?,
    })
}

fn encode_breakdown(b: &PredictionBreakdown) -> Json {
    vec![
        b.count(false, false),
        b.count(false, true),
        b.count(true, false),
        b.count(true, true),
    ]
    .to_json()
}

fn decode_breakdown(v: &Json) -> Result<PredictionBreakdown, DecodeError> {
    let counts: Vec<u64> = v.decode()?;
    if counts.len() != 4 {
        return Err(DecodeError::new(format!(
            "expected 4 breakdown counts, found {}",
            counts.len()
        )));
    }
    Ok(PredictionBreakdown::from_counts(
        counts[0], counts[1], counts[2], counts[3],
    ))
}

fn encode_cache_stats(s: &CacheStats) -> Json {
    vec![s.hits, s.misses].to_json()
}

fn decode_cache_stats(v: &Json) -> Result<CacheStats, DecodeError> {
    let (hits, misses): (u64, u64) = v.decode()?;
    Ok(CacheStats { hits, misses })
}

/// Encodes one job output losslessly (see the module docs for the two
/// non-observable exceptions).
pub fn encode_output(output: &JobOutput) -> Json {
    match output {
        JobOutput::Multiscalar(r) => Json::object()
            .field("kind", "ms")
            .field("cycles", r.cycles)
            .field("instructions", r.instructions)
            .field("committed_loads", r.committed_loads)
            .field("committed_stores", r.committed_stores)
            .field("tasks", r.tasks)
            .field("misspeculations", r.misspeculations)
            .field("control_predictions", r.control_predictions)
            .field("control_mispredicts", r.control_mispredicts)
            .field("synchronized_loads", r.synchronized_loads)
            .field("false_dep_releases", r.false_dep_releases)
            .field("breakdown", encode_breakdown(&r.breakdown))
            .field("dcache", encode_cache_stats(&r.dcache))
            .field("icache", encode_cache_stats(&r.icache))
            .field("bus_transactions", r.bus_transactions)
            .field("ddc", r.ddc.clone()),
        JobOutput::Window(r) => Json::object()
            .field("kind", "window")
            .field("instructions", r.instructions)
            .field("loads", r.loads)
            .field("stores", r.stores)
            .field(
                "windows",
                Json::Array(
                    r.windows()
                        .iter()
                        .map(|w| {
                            // Only the multiset of per-edge counts is
                            // observable downstream; ship it sorted so
                            // the encoding is deterministic.
                            let mut counts: Vec<u64> = w.edge_counts.values().copied().collect();
                            counts.sort_unstable_by(|a, b| b.cmp(a));
                            Json::object()
                                .field("window_size", w.window_size)
                                .field("misspeculations", w.misspeculations)
                                .field("edge_counts", counts)
                                .field("ddcs", w.ddcs.clone())
                        })
                        .collect(),
                ),
            ),
        JobOutput::Superscalar(r) => Json::object()
            .field("kind", "ooo")
            .field("cycles", r.cycles)
            .field("instructions", r.instructions)
            .field("loads", r.loads)
            .field("misspeculations", r.misspeculations)
            .field("synchronized_loads", r.synchronized_loads)
            .field("breakdown", encode_breakdown(&r.breakdown)),
        JobOutput::Summary(s) => Json::object()
            .field("kind", "summary")
            .field("instructions", s.instructions)
            .field("loads", s.loads)
            .field("stores", s.stores)
            .field("branches", s.branches)
            .field("taken_branches", s.taken_branches)
            .field("tasks", s.tasks),
    }
}

/// Decodes an output encoded by [`encode_output`].
pub fn decode_output(v: &Json) -> Result<JobOutput, DecodeError> {
    let kind: String = v.field_as("kind")?;
    match kind.as_str() {
        "ms" => Ok(JobOutput::Multiscalar(MsResult {
            cycles: v.field_as("cycles")?,
            instructions: v.field_as("instructions")?,
            committed_loads: v.field_as("committed_loads")?,
            committed_stores: v.field_as("committed_stores")?,
            tasks: v.field_as("tasks")?,
            misspeculations: v.field_as("misspeculations")?,
            control_predictions: v.field_as("control_predictions")?,
            control_mispredicts: v.field_as("control_mispredicts")?,
            synchronized_loads: v.field_as("synchronized_loads")?,
            false_dep_releases: v.field_as("false_dep_releases")?,
            breakdown: decode_breakdown(v.required("breakdown")?)
                .map_err(|e| e.in_field("breakdown"))?,
            dcache: decode_cache_stats(v.required("dcache")?).map_err(|e| e.in_field("dcache"))?,
            icache: decode_cache_stats(v.required("icache")?).map_err(|e| e.in_field("icache"))?,
            bus_transactions: v.field_as("bus_transactions")?,
            ddc: v.field_as("ddc")?,
        })),
        "window" => {
            let windows = v.required("windows")?;
            let per_window = windows
                .as_array()
                .ok_or_else(|| DecodeError::new("expected an array").in_field("windows"))?
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let counts: Vec<u64> = w.field_as("edge_counts")?;
                    let mut edge_counts = mds_harness::hash::FxHashMap::default();
                    for (j, &count) in counts.iter().enumerate() {
                        // Placeholder edges: distinct keys carrying the
                        // original count multiset (the real PCs never
                        // leave the producing process).
                        edge_counts.insert(DepEdge::new(j as u32, 0), count);
                    }
                    Ok(WindowStats {
                        window_size: w.field_as("window_size")?,
                        misspeculations: w.field_as("misspeculations")?,
                        edge_counts,
                        ddcs: w.field_as("ddcs")?,
                    })
                    .map_err(|e: DecodeError| e.in_index(i).in_field("windows"))
                })
                .collect::<Result<Vec<WindowStats>, DecodeError>>()?;
            Ok(JobOutput::Window(WindowReport::from_parts(
                per_window,
                v.field_as("instructions")?,
                v.field_as("loads")?,
                v.field_as("stores")?,
                Histogram::new("store->load distance"),
            )))
        }
        "ooo" => Ok(JobOutput::Superscalar(OooResult {
            cycles: v.field_as("cycles")?,
            instructions: v.field_as("instructions")?,
            loads: v.field_as("loads")?,
            misspeculations: v.field_as("misspeculations")?,
            synchronized_loads: v.field_as("synchronized_loads")?,
            breakdown: decode_breakdown(v.required("breakdown")?)
                .map_err(|e| e.in_field("breakdown"))?,
        })),
        "summary" => Ok(JobOutput::Summary(TraceSummary {
            instructions: v.field_as("instructions")?,
            loads: v.field_as("loads")?,
            stores: v.field_as("stores")?,
            branches: v.field_as("branches")?,
            taken_branches: v.field_as("taken_branches")?,
            tasks: v.field_as("tasks")?,
        })),
        other => Err(DecodeError::new(format!(
            "unknown output kind '{other}' (expected ms|window|ooo|summary)"
        ))
        .in_field("kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::hash::FxHashMap;
    use mds_workloads::by_name;

    fn roundtrip_job(job: &Job) -> Job {
        let encoded = encode_job(job).to_string();
        decode_job(&Json::parse(&encoded).unwrap()).unwrap()
    }

    fn roundtrip_output(output: &JobOutput) -> JobOutput {
        let encoded = encode_output(output).to_string();
        decode_output(&Json::parse(&encoded).unwrap()).unwrap()
    }

    #[test]
    fn ms_job_roundtrips_every_config_field() {
        let compress = by_name("compress").unwrap();
        let config = MsConfig {
            stages: 8,
            policy: Policy::Esync,
            issue_width: 3,
            window: 48,
            squash_penalty: 7,
            tagging: TagScheme::DataAddress,
            ddc_sizes: vec![16, 64, 256],
            mdpt: MdptConfig {
                capacity: 128,
                counter_bits: 2,
                threshold: 1,
                initial: 2,
            },
            ..MsConfig::paper(8, Policy::Esync)
        };
        let job = Job {
            id: "compress/ms/s8/ESYNC".to_string(),
            workload: compress,
            scale: Scale::Small,
            kind: JobKind::Multiscalar(config.clone()),
        };
        let back = roundtrip_job(&job);
        assert_eq!(back.id, job.id);
        assert_eq!(back.workload.name, "compress");
        assert_eq!(back.scale, Scale::Small);
        match back.kind {
            JobKind::Multiscalar(c) => {
                assert_eq!(format!("{c:?}"), format!("{config:?}"));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn window_ooo_and_summary_jobs_roundtrip() {
        let sc = by_name("sc").unwrap();
        for kind in [
            JobKind::Window(WindowConfig::default()),
            JobKind::Superscalar(OooConfig {
                policy: Policy::Sync,
                window: 64,
                ..OooConfig::default()
            }),
            JobKind::Summary,
        ] {
            let job = Job {
                id: "x".to_string(),
                workload: sc,
                scale: Scale::Tiny,
                kind,
            };
            let back = roundtrip_job(&job);
            assert_eq!(format!("{:?}", back.kind), format!("{:?}", job.kind));
        }
    }

    #[test]
    fn decode_rejects_unknown_workload_scale_and_kind() {
        let good = encode_job(&Job {
            id: "x".to_string(),
            workload: by_name("compress").unwrap(),
            scale: Scale::Tiny,
            kind: JobKind::Summary,
        })
        .to_string();
        for (needle, replacement, path) in [
            ("compress", "no-such-workload", "$.workload"),
            ("tiny", "huge", "$.scale"),
            ("summary", "frob", "$.kind"),
        ] {
            let bad = good.replace(needle, replacement);
            let err = decode_job(&Json::parse(&bad).unwrap()).unwrap_err();
            assert_eq!(err.path, path, "{err}");
        }
    }

    #[test]
    fn ms_output_roundtrips_including_breakdown_and_ddc() {
        let mut breakdown = PredictionBreakdown::default();
        breakdown.record(false, false);
        breakdown.record(false, true);
        breakdown.record(true, false);
        breakdown.record(true, true);
        breakdown.record(true, true);
        let r = MsResult {
            cycles: 123_456,
            instructions: 1_000_000,
            committed_loads: 250_000,
            committed_stores: 90_000,
            tasks: 4000,
            misspeculations: 321,
            control_predictions: 4000,
            control_mispredicts: 37,
            synchronized_loads: 555,
            false_dep_releases: 7,
            breakdown,
            dcache: CacheStats {
                hits: 9000,
                misses: 100,
            },
            icache: CacheStats {
                hits: 8000,
                misses: 50,
            },
            bus_transactions: 42,
            ddc: vec![(16, 1, 2), (64, 3, 4)],
        };
        match roundtrip_output(&JobOutput::Multiscalar(r.clone())) {
            JobOutput::Multiscalar(back) => assert_eq!(format!("{back:?}"), format!("{r:?}")),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn window_output_preserves_every_table_metric() {
        let mut edge_counts = FxHashMap::default();
        edge_counts.insert(DepEdge::new(0x100, 0x200), 990);
        edge_counts.insert(DepEdge::new(0x104, 0x204), 9);
        edge_counts.insert(DepEdge::new(0x108, 0x208), 1);
        let report = WindowReport::from_parts(
            vec![WindowStats {
                window_size: 32,
                misspeculations: 1000,
                edge_counts,
                ddcs: vec![(32, 900, 100), (128, 950, 50)],
            }],
            50_000,
            12_000,
            4000,
            Histogram::new("store->load distance"),
        );
        let back = match roundtrip_output(&JobOutput::Window(report.clone())) {
            JobOutput::Window(back) => back,
            other => panic!("wrong kind: {other:?}"),
        };
        assert_eq!(back.instructions, 50_000);
        assert_eq!(back.loads, 12_000);
        assert_eq!(back.stores, 4000);
        let (w, b) = (report.for_window(32).unwrap(), back.for_window(32).unwrap());
        assert_eq!(b.misspeculations, w.misspeculations);
        assert_eq!(b.static_edges(), w.static_edges());
        for fraction in [0.5, 0.99, 0.999, 1.0] {
            assert_eq!(b.edges_covering(fraction), w.edges_covering(fraction));
        }
        assert_eq!(b.ddcs, w.ddcs);
        assert_eq!(
            b.ddc_miss_rate(128).unwrap().value(),
            w.ddc_miss_rate(128).unwrap().value()
        );
    }

    #[test]
    fn ooo_and_summary_outputs_roundtrip() {
        let ooo = OooResult {
            cycles: 10,
            instructions: 20,
            loads: 5,
            misspeculations: 1,
            synchronized_loads: 2,
            breakdown: PredictionBreakdown::from_counts(1, 2, 3, 4),
        };
        match roundtrip_output(&JobOutput::Superscalar(ooo.clone())) {
            JobOutput::Superscalar(back) => assert_eq!(format!("{back:?}"), format!("{ooo:?}")),
            other => panic!("wrong kind: {other:?}"),
        }
        let s = TraceSummary {
            instructions: 1,
            loads: 2,
            stores: 3,
            branches: 4,
            taken_branches: 5,
            tasks: 6,
        };
        match roundtrip_output(&JobOutput::Summary(s)) {
            JobOutput::Summary(back) => assert_eq!(format!("{back:?}"), format!("{s:?}")),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let job = Job {
            id: "d".to_string(),
            workload: by_name("compress").unwrap(),
            scale: Scale::Tiny,
            kind: JobKind::Multiscalar(MsConfig::paper(4, Policy::Sync)),
        };
        assert_eq!(encode_job(&job).to_string(), encode_job(&job).to_string());
        // encode → decode → encode is byte-stable (nothing floats).
        let once = encode_job(&job).to_string();
        let twice = encode_job(&decode_job(&Json::parse(&once).unwrap()).unwrap()).to_string();
        assert_eq!(once, twice);
    }
}
