//! Declarative experiment descriptors: what one grid cell computes.

use mds_emu::TraceSummary;
use mds_harness::json::{Json, ToJson};
use mds_multiscalar::{MsConfig, MsResult};
use mds_ooo::{OooConfig, OooResult, WindowConfig, WindowReport};
use mds_workloads::{Scale, Workload};

/// What a job computes over its workload's committed trace.
///
/// Every kind replays the same shared, read-only trace; none of them
/// re-runs the emulator. That is the invariant the runner's trace cache
/// enforces: one emulation per workload per run, however many cells the
/// grid has.
// A grid holds one `JobKind` per cell — tens of values, not millions —
// so the size spread between variants costs nothing that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum JobKind {
    /// A cycle-level Multiscalar timing run.
    Multiscalar(MsConfig),
    /// The unrealistic-OOO sliding-window dependence analysis.
    Window(WindowConfig),
    /// The standalone superscalar timing model.
    Superscalar(OooConfig),
    /// Trace aggregate counts only (instruction/load/store/task totals).
    Summary,
}

impl JobKind {
    /// Short label used in derived job ids and observability output.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Multiscalar(_) => "ms",
            JobKind::Window(_) => "window",
            JobKind::Superscalar(_) => "ooo",
            JobKind::Summary => "summary",
        }
    }
}

/// One independent experiment cell: a workload at a scale, and what to
/// compute over its trace.
#[derive(Debug, Clone)]
pub struct Job {
    /// Stable identifier; unique within a grid, used in result JSON.
    pub id: String,
    /// The workload whose committed trace this job replays.
    pub workload: Workload,
    /// The scale the workload is built at.
    pub scale: Scale,
    /// The computation to run over the trace.
    pub kind: JobKind,
}

impl Job {
    /// The trace-cache key this job shares with every other job on the
    /// same workload and scale.
    pub fn trace_key(&self) -> (&'static str, Scale) {
        (self.workload.name, self.scale)
    }
}

/// The outcome of one executed [`Job`], matching its [`JobKind`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobKind::Multiscalar`] job.
    Multiscalar(MsResult),
    /// Result of a [`JobKind::Window`] job.
    Window(WindowReport),
    /// Result of a [`JobKind::Superscalar`] job.
    Superscalar(OooResult),
    /// Result of a [`JobKind::Summary`] job.
    Summary(TraceSummary),
}

impl JobOutput {
    /// The Multiscalar result, if this was a Multiscalar job.
    pub fn as_multiscalar(&self) -> Option<&MsResult> {
        match self {
            JobOutput::Multiscalar(r) => Some(r),
            _ => None,
        }
    }

    /// The window report, if this was a window-analysis job.
    pub fn as_window(&self) -> Option<&WindowReport> {
        match self {
            JobOutput::Window(r) => Some(r),
            _ => None,
        }
    }

    /// The superscalar result, if this was a superscalar job.
    pub fn as_superscalar(&self) -> Option<&OooResult> {
        match self {
            JobOutput::Superscalar(r) => Some(r),
            _ => None,
        }
    }

    /// The trace summary, if this was a summary job.
    pub fn as_summary(&self) -> Option<&TraceSummary> {
        match self {
            JobOutput::Summary(s) => Some(s),
            _ => None,
        }
    }
}

impl ToJson for JobOutput {
    /// A deterministic JSON view of the output.
    ///
    /// Everything serialized here is a pure function of the committed
    /// trace and the job configuration — no wall-clock times, no
    /// hash-map iteration order — so serial and parallel runs of the
    /// same grid produce byte-identical documents (the runner's core
    /// contract).
    fn to_json(&self) -> Json {
        match self {
            JobOutput::Multiscalar(r) => Json::object()
                .field("kind", "multiscalar")
                .field("result", r.to_json()),
            JobOutput::Window(r) => {
                let windows: Vec<Json> = r
                    .windows()
                    .iter()
                    .map(|w| {
                        Json::object()
                            .field("window_size", w.window_size)
                            .field("misspeculations", w.misspeculations)
                            .field("static_edges", w.static_edges())
                            .field("edges_covering_999", w.edges_covering(0.999))
                            .field(
                                "ddc",
                                Json::Array(
                                    w.ddcs
                                        .iter()
                                        .map(|&(size, hits, misses)| {
                                            Json::object()
                                                .field("size", size)
                                                .field("hits", hits)
                                                .field("misses", misses)
                                        })
                                        .collect(),
                                ),
                            )
                    })
                    .collect();
                Json::object()
                    .field("kind", "window")
                    .field("instructions", r.instructions)
                    .field("loads", r.loads)
                    .field("stores", r.stores)
                    .field("windows", Json::Array(windows))
            }
            JobOutput::Superscalar(r) => Json::object()
                .field("kind", "superscalar")
                .field("cycles", r.cycles)
                .field("instructions", r.instructions)
                .field("ipc", r.ipc())
                .field("loads", r.loads)
                .field("misspeculations", r.misspeculations)
                .field("synchronized_loads", r.synchronized_loads)
                .field("breakdown", r.breakdown),
            JobOutput::Summary(s) => Json::object()
                .field("kind", "summary")
                .field("instructions", s.instructions)
                .field("loads", s.loads)
                .field("stores", s.stores)
                .field("branches", s.branches)
                .field("taken_branches", s.taken_branches)
                .field("tasks", s.tasks),
        }
    }
}

/// A batch of jobs submitted together: the declarative form of one paper
/// table, figure, or sweep.
///
/// Jobs keep their submission order; the runner's result store reports in
/// exactly this order regardless of which worker finished first.
///
/// # Examples
///
/// ```
/// use mds_core::Policy;
/// use mds_multiscalar::MsConfig;
/// use mds_runner::Grid;
/// use mds_workloads::{by_name, Scale};
///
/// let compress = by_name("compress").unwrap();
/// let mut grid = Grid::new(Scale::Tiny);
/// for policy in [Policy::Always, Policy::Esync] {
///     grid.multiscalar(&compress, MsConfig::paper(4, policy));
/// }
/// grid.summary(&compress);
/// assert_eq!(grid.len(), 3);
/// assert_eq!(grid.distinct_workloads(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Grid {
    scale: Option<Scale>,
    jobs: Vec<Job>,
}

impl Grid {
    /// An empty grid whose jobs default to `scale`.
    pub fn new(scale: Scale) -> Grid {
        Grid {
            scale: Some(scale),
            jobs: Vec::new(),
        }
    }

    /// Adds a fully-specified job.
    pub fn push(&mut self, job: Job) -> &mut Self {
        self.jobs.push(job);
        self
    }

    fn derived(&mut self, workload: &Workload, kind: JobKind, detail: String) -> &mut Self {
        let scale = self.scale.expect("Grid::new sets a default scale");
        let id = if detail.is_empty() {
            format!("{}/{}", workload.name, kind.label())
        } else {
            format!("{}/{}/{}", workload.name, kind.label(), detail)
        };
        self.push(Job {
            id,
            workload: *workload,
            scale,
            kind,
        })
    }

    /// Adds a Multiscalar cell; the id records stages and policy.
    pub fn multiscalar(&mut self, workload: &Workload, config: MsConfig) -> &mut Self {
        let detail = format!("s{}/{}", config.stages, config.policy);
        self.derived(workload, JobKind::Multiscalar(config), detail)
    }

    /// Adds a Multiscalar cell under an explicit id (for sweeps whose
    /// cells differ in more than stages/policy).
    pub fn multiscalar_with_id(
        &mut self,
        id: impl Into<String>,
        workload: &Workload,
        config: MsConfig,
    ) -> &mut Self {
        let scale = self.scale.expect("Grid::new sets a default scale");
        self.push(Job {
            id: id.into(),
            workload: *workload,
            scale,
            kind: JobKind::Multiscalar(config),
        })
    }

    /// Adds a window-analysis cell.
    pub fn window(&mut self, workload: &Workload, config: WindowConfig) -> &mut Self {
        self.derived(workload, JobKind::Window(config), String::new())
    }

    /// Adds a superscalar cell; the id records the policy.
    pub fn superscalar(&mut self, workload: &Workload, config: OooConfig) -> &mut Self {
        let detail = config.policy.to_string();
        self.derived(workload, JobKind::Superscalar(config), detail)
    }

    /// Adds a trace-summary cell.
    pub fn summary(&mut self, workload: &Workload) -> &mut Self {
        self.derived(workload, JobKind::Summary, String::new())
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no cells have been added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of distinct (workload, scale) traces the grid needs — the
    /// number of emulations a full run performs.
    pub fn distinct_workloads(&self) -> usize {
        self.jobs
            .iter()
            .map(Job::trace_key)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_core::Policy;
    use mds_workloads::by_name;

    #[test]
    fn derived_ids_are_descriptive_and_unique() {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut g = Grid::new(Scale::Tiny);
        g.multiscalar(&compress, MsConfig::paper(4, Policy::Always))
            .multiscalar(&compress, MsConfig::paper(8, Policy::Always))
            .multiscalar(&sc, MsConfig::paper(4, Policy::Always))
            .window(&compress, WindowConfig::default())
            .summary(&compress)
            .superscalar(&compress, OooConfig::default());
        let ids: Vec<&str> = g.jobs().iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "compress/ms/s4/ALWAYS",
                "compress/ms/s8/ALWAYS",
                "sc/ms/s4/ALWAYS",
                "compress/window",
                "compress/summary",
                "compress/ooo/ALWAYS",
            ]
        );
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn distinct_workloads_counts_trace_keys() {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut g = Grid::new(Scale::Tiny);
        g.multiscalar(&compress, MsConfig::paper(4, Policy::Always))
            .multiscalar(&compress, MsConfig::paper(4, Policy::Never))
            .summary(&sc);
        assert_eq!(g.len(), 3);
        assert_eq!(g.distinct_workloads(), 2);
    }

    #[test]
    fn output_json_is_deterministic_for_summaries() {
        let s = TraceSummary {
            instructions: 10,
            loads: 2,
            stores: 1,
            branches: 3,
            taken_branches: 2,
            tasks: 4,
        };
        let a = JobOutput::Summary(s).to_json().to_string();
        let b = JobOutput::Summary(s).to_json().to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"kind\":\"summary\""));
    }
}
