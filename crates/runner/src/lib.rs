//! Parallel experiment-orchestration engine for the `mds` workspace.
//!
//! Every paper table and figure is a grid of *independent* (workload ×
//! policy × configuration) simulations over *identical committed
//! instruction streams* — the paper evaluates all six speculation
//! policies on the same traces. That structure is embarrassingly
//! parallel once the trace front-end is shared, and this crate exploits
//! it with four pieces, all std-only:
//!
//! 1. **Experiment grids** ([`Grid`], [`Job`], [`JobKind`]) — declarative
//!    descriptors of what to simulate; grids are data, not control flow.
//! 2. **A work-stealing scoped-thread pool** ([`pool::run_indexed`]) —
//!    per-worker deques plus a global injector under
//!    `std::thread::scope`; worker count from `--jobs N`, `MDS_JOBS`, or
//!    available parallelism, with `--jobs 1` running genuinely inline.
//! 3. **A shared trace cache** ([`TraceCache`]) — each workload is
//!    emulated exactly once per run behind `Arc<mds_emu::Trace>` and
//!    replayed read-only by every cell; reference counts seeded from the
//!    job list bound peak memory.
//! 4. **A deterministic result store** ([`RunOutcome`]) — results are
//!    reported in job-submission order whatever the completion order, and
//!    result JSON carries no timing or scheduling data, so parallel
//!    output is byte-identical to serial. Wall-times, cache hit rates,
//!    and worker utilization are reported separately via
//!    [`RunStats::render`].
//!
//! # Examples
//!
//! ```
//! use mds_core::Policy;
//! use mds_multiscalar::MsConfig;
//! use mds_runner::{Grid, Runner};
//! use mds_workloads::{by_name, Scale};
//!
//! // Figure-5-shaped mini-grid: one workload, every policy.
//! let compress = by_name("compress").unwrap();
//! let mut grid = Grid::new(Scale::Tiny);
//! for policy in Policy::ALL {
//!     grid.multiscalar(&compress, MsConfig::paper(4, policy));
//! }
//!
//! let outcome = Runner::from_env(Some(2)).run(&grid);
//! assert_eq!(outcome.results.len(), Policy::ALL.len());
//! // One workload: a single emulation, shared by every policy cell.
//! assert_eq!(outcome.stats.cache_misses, 1);
//! assert_eq!(outcome.stats.cache_hits as usize, Policy::ALL.len() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod pool;
pub mod runner;
pub mod wire;

pub use cache::TraceCache;
pub use job::{Grid, Job, JobKind, JobOutput};
pub use pool::{job_count, parse_jobs, run_indexed, try_job_count, try_run_indexed};
pub use pool::{JobPanic, PoolReport};
pub use runner::{JobFailure, JobResult, ReplayEngine, RunError, RunOutcome, RunStats, Runner};
