//! The engine: executes a [`Grid`] on the pool with the shared trace
//! cache and collects deterministic, submission-ordered results.

use crate::cache::TraceCache;
use crate::job::{Grid, Job, JobKind, JobOutput};
use crate::pool::{self, PoolReport};
use mds_emu::Trace;
use mds_harness::json::{Json, ToJson};
use mds_multiscalar::{MsConfig, Multiscalar};
use mds_ooo::{OooConfig, OooSim, WindowAnalyzer};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Which engine replays Multiscalar (and fused superscalar) grid cells.
///
/// Both engines produce byte-identical results — enforced by unit and
/// property tests in `mds-multiscalar` and by the CI engine-equivalence
/// gate — so this only selects *how* the work is done, never *what* comes
/// out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEngine {
    /// The legacy path: every cell re-walks the raw record stream from
    /// instruction zero, one policy at a time.
    Scratch,
    /// The planned path: cells replay the trace's cached
    /// structure-of-arrays [`ReplayPlan`](mds_emu::ReplayPlan), and cells
    /// that differ only in speculation policy over the same trace fuse
    /// into one job sharing the policy-independent replay prefix
    /// (see [`mds_multiscalar::run_fused`]).
    Fork,
}

impl ReplayEngine {
    /// Reads the `MDS_REPLAY` environment variable: `"scratch"` or
    /// `"fork"`, case-insensitive. Unset or empty selects the default
    /// fork engine; an unrecognized value warns on stderr and falls back
    /// to the default.
    pub fn from_env() -> ReplayEngine {
        match std::env::var("MDS_REPLAY") {
            Ok(v) if v.eq_ignore_ascii_case("scratch") => ReplayEngine::Scratch,
            Ok(v) if v.eq_ignore_ascii_case("fork") || v.is_empty() => ReplayEngine::Fork,
            Ok(v) => {
                eprintln!("runner: unknown MDS_REPLAY value {v:?}; using the fork engine");
                ReplayEngine::Fork
            }
            Err(_) => ReplayEngine::Fork,
        }
    }
}

/// One executed job: its output plus scheduling metadata.
///
/// The metadata (wall time, worker id) exists for observability only and
/// never enters result JSON — that is what keeps parallel output
/// byte-identical to serial.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's id, copied from the grid.
    pub id: String,
    /// What the job computed.
    pub output: JobOutput,
    /// Wall-clock nanoseconds this job took (replay only; a cache miss
    /// also pays the emulation inside this figure). For cells fused into
    /// one cross-policy replay group, this is the whole group's wall
    /// time, attributed to every member.
    pub wall_ns: u128,
}

/// Aggregate observability for one [`Runner::run`].
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Cells executed.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Trace-cache fetches served from memory.
    pub cache_hits: u64,
    /// Trace-cache fetches that ran the emulator (== emulations).
    pub cache_misses: u64,
    /// High-water mark of resident trace bytes.
    pub peak_trace_bytes: usize,
    /// End-to-end wall time of the run, nanoseconds.
    pub wall_ns: u128,
    /// Per-worker busy time and executed-job counts.
    pub pool: PoolReport,
}

impl RunStats {
    /// Mean worker utilization: busy time over (workers × wall time).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.pool.workers == 0 {
            return 0.0;
        }
        let denom = (self.pool.workers as u128 * self.wall_ns) as f64;
        self.pool.total_busy_ns() as f64 / denom
    }

    /// Renders the end-of-run observability block (for stderr — this is
    /// timing data, deliberately kept out of result JSON).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "runner: {} jobs on {} worker{} in {:.2}s ({:.0}% utilization)",
            self.jobs,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall_ns as f64 / 1e9,
            self.utilization() * 100.0,
        );
        let _ = writeln!(
            out,
            "runner: trace cache: {} emulation{}, {} reuse{}, peak {:.1} MiB",
            self.cache_misses,
            if self.cache_misses == 1 { "" } else { "s" },
            self.cache_hits,
            if self.cache_hits == 1 { "" } else { "s" },
            self.peak_trace_bytes as f64 / (1024.0 * 1024.0),
        );
        for (who, (busy, n)) in self
            .pool
            .busy_ns
            .iter()
            .zip(self.pool.executed.iter())
            .enumerate()
        {
            let _ = writeln!(
                out,
                "runner:   worker {who}: {n} job{} in {:.2}s busy",
                if *n == 1 { "" } else { "s" },
                *busy as f64 / 1e9,
            );
        }
        if self.pool.steals > 0 {
            let _ = writeln!(out, "runner:   {} steal(s)", self.pool.steals);
        }
        out
    }
}

/// Everything a run produced: ordered results plus observability.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One result per grid cell, **in submission order** — independent of
    /// completion order, so serial and parallel runs agree byte-for-byte.
    pub results: Vec<JobResult>,
    /// Timing/cache/utilization counters for the whole run.
    pub stats: RunStats,
}

impl RunOutcome {
    /// The deterministic JSON document for this run: an array of
    /// `{id, output}` objects in submission order. Contains no timing
    /// data, worker ids, or anything else schedule-dependent.
    pub fn results_json(&self) -> Json {
        Json::Array(
            self.results
                .iter()
                .map(|r| {
                    Json::object()
                        .field("id", r.id.as_str())
                        .field("output", r.output.to_json())
                })
                .collect(),
        )
    }

    /// Looks up one result by job id.
    pub fn get(&self, id: &str) -> Option<&JobResult> {
        self.results.iter().find(|r| r.id == id)
    }
}

/// Executes experiment grids.
///
/// # Examples
///
/// ```
/// use mds_core::Policy;
/// use mds_multiscalar::MsConfig;
/// use mds_runner::{Grid, Runner};
/// use mds_workloads::{by_name, Scale};
///
/// let compress = by_name("compress").unwrap();
/// let mut grid = Grid::new(Scale::Tiny);
/// for policy in [Policy::Never, Policy::Always] {
///     grid.multiscalar(&compress, MsConfig::paper(4, policy));
/// }
///
/// let outcome = Runner::new(2).run(&grid);
/// assert_eq!(outcome.results.len(), 2);
/// // Two cells, one workload: exactly one emulation, one cache reuse.
/// assert_eq!(outcome.stats.cache_misses, 1);
/// assert_eq!(outcome.stats.cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
    shared_cache: Option<Arc<TraceCache>>,
}

/// One grid cell that panicked during a [`Runner::try_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The failed job's id, copied from the grid.
    pub id: String,
    /// The captured panic message.
    pub message: String,
}

/// A [`Runner::try_run`] in which at least one job panicked.
///
/// Every other cell of the grid still ran to completion; the error lists
/// exactly which jobs failed and why, so a long-lived caller (the serving
/// subsystem) can report the failure and keep accepting work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// The jobs that panicked, in submission order.
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} job(s) failed:", self.failures.len())?;
        for failure in &self.failures {
            write!(f, " [{}: {}]", failure.id, failure.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Runner {
        Runner {
            workers: workers.max(1),
            shared_cache: None,
        }
    }

    /// A runner sized from `explicit` (e.g. a `--jobs` flag), falling back
    /// to `MDS_JOBS` and then the machine's available parallelism.
    ///
    /// Lenient about malformed `MDS_JOBS` (falls through to the next
    /// source); user-facing front-ends use [`Runner::try_from_env`].
    pub fn from_env(explicit: Option<usize>) -> Runner {
        Runner::new(pool::job_count(explicit))
    }

    /// Like [`Runner::from_env`], but a malformed or zero `MDS_JOBS`
    /// value is a usage error instead of a silent fallback.
    pub fn try_from_env(explicit: Option<usize>) -> Result<Runner, String> {
        pool::try_job_count(explicit).map(Runner::new)
    }

    /// Attaches a shared, long-lived trace cache (see
    /// [`TraceCache::persistent`]).
    ///
    /// Every subsequent [`Runner::run`] fetches traces from — and leaves
    /// them resident in — `cache`, so emulation cost amortizes across
    /// runs. Clones of this runner share the same cache, which is what
    /// lets concurrent callers (server workers) submit grids at once:
    /// `run` takes `&self`, and the cache's per-key `OnceLock` guarantees
    /// each workload is still emulated exactly once across all of them.
    pub fn with_shared_cache(mut self, cache: Arc<TraceCache>) -> Runner {
        self.shared_cache = Some(cache);
        self
    }

    /// The shared trace cache, if one was attached.
    pub fn shared_cache(&self) -> Option<&Arc<TraceCache>> {
        self.shared_cache.as_ref()
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every cell of `grid` and returns submission-ordered results.
    ///
    /// # Panics
    ///
    /// Panics with a labeled message if a job panicked (a workload bug,
    /// not an operational condition); see [`Runner::try_run`] for the
    /// recovering variant.
    pub fn run(&self, grid: &Grid) -> RunOutcome {
        self.try_run(grid).unwrap_or_else(|e| panic!("runner: {e}"))
    }

    /// Runs every cell of `grid`; a panicking job fails the run with a
    /// clean, labeled [`RunError`] instead of unwinding into the caller,
    /// and every other job still completes.
    ///
    /// The replay engine comes from `MDS_REPLAY` (see
    /// [`ReplayEngine::from_env`]); use [`Runner::try_run_with_engine`] to
    /// pin it explicitly.
    pub fn try_run(&self, grid: &Grid) -> Result<RunOutcome, RunError> {
        self.try_run_with_engine(grid, ReplayEngine::from_env())
    }

    /// Like [`Runner::try_run`], but with an explicit [`ReplayEngine`]
    /// instead of consulting the environment — the engine-equivalence
    /// tests and benches compare both engines in one process this way.
    pub fn try_run_with_engine(
        &self,
        grid: &Grid,
        engine: ReplayEngine,
    ) -> Result<RunOutcome, RunError> {
        let jobs = grid.jobs();
        let owned;
        let cache: &TraceCache = match &self.shared_cache {
            Some(shared) => shared,
            None => {
                owned = TraceCache::new(jobs);
                &owned
            }
        };
        // With a shared cache, stats must be deltas: the cache's counters
        // span every run it has ever served. Concurrent runs may
        // mis-attribute each other's traffic between the two reads, but
        // the totals (the serving metrics) stay exact.
        let hits_before = cache.hits();
        let misses_before = cache.misses();
        // Groups are planned from grid order alone — never from worker
        // timing — so the unit of scheduling is deterministic and serial
        // and parallel runs fuse identically.
        let groups = plan_groups(jobs, engine);
        let start = Instant::now();
        let (slots, pool_report) = pool::try_run_indexed(self.workers, groups.len(), |gi| {
            execute_group(jobs, &groups[gi], cache, engine)
        });
        let wall_ns = start.elapsed().as_nanos();
        let mut results: Vec<Option<JobResult>> = jobs.iter().map(|_| None).collect();
        let mut failures: Vec<(usize, JobFailure)> = Vec::new();
        for slot in slots {
            match slot {
                Ok(members) => {
                    for (idx, result) in members {
                        results[idx] = Some(result);
                    }
                }
                // A panic fails the whole group: its members share one
                // trace replay, so none of them produced a result.
                Err(p) => {
                    for &idx in &groups[p.index] {
                        failures.push((
                            idx,
                            JobFailure {
                                id: jobs[idx].id.clone(),
                                message: p.message.clone(),
                            },
                        ));
                    }
                }
            }
        }
        if !failures.is_empty() {
            failures.sort_by_key(|(idx, _)| *idx);
            return Err(RunError {
                failures: failures.into_iter().map(|(_, f)| f).collect(),
            });
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every job belongs to exactly one group"))
            .collect();
        let stats = RunStats {
            jobs: jobs.len(),
            workers: self.workers,
            cache_hits: cache.hits() - hits_before,
            cache_misses: cache.misses() - misses_before,
            peak_trace_bytes: cache.peak_bytes(),
            wall_ns,
            pool: pool_report,
        };
        Ok(RunOutcome { results, stats })
    }
}

/// Partitions `jobs` (by index) into the units the pool schedules.
///
/// The scratch engine keeps today's shape: one job per group. The fork
/// engine fuses Multiscalar cells that replay the same trace on
/// policy-twin hardware (see [`mds_multiscalar::forkable_twins`]) and
/// superscalar cells over the same trace, so each fused group walks the
/// shared replay prefix once. Grouping is first-fit over submission
/// order, which keeps it a pure function of the grid.
fn plan_groups(jobs: &[Job], engine: ReplayEngine) -> Vec<Vec<usize>> {
    if engine == ReplayEngine::Scratch {
        return (0..jobs.len()).map(|idx| vec![idx]).collect();
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (idx, job) in jobs.iter().enumerate() {
        let home = match &job.kind {
            JobKind::Multiscalar(config) => groups.iter_mut().find(|g| {
                let first = &jobs[g[0]];
                first.trace_key() == job.trace_key()
                    && matches!(&first.kind, JobKind::Multiscalar(other)
                        if mds_multiscalar::forkable_twins(other, config))
            }),
            JobKind::Superscalar(_) => groups.iter_mut().find(|g| {
                let first = &jobs[g[0]];
                first.trace_key() == job.trace_key()
                    && matches!(&first.kind, JobKind::Superscalar(_))
            }),
            JobKind::Window(_) | JobKind::Summary => None,
        };
        match home {
            Some(group) => group.push(idx),
            None => groups.push(vec![idx]),
        }
    }
    groups
}

/// Runs one scheduling group and returns `(job index, result)` pairs.
///
/// The trace is fetched (and released) once *per member*, not once per
/// group: cache hit/miss counters stay a per-cell contract regardless of
/// how cells were fused, and pin counts still balance.
fn execute_group(
    jobs: &[Job],
    group: &[usize],
    cache: &TraceCache,
    engine: ReplayEngine,
) -> Vec<(usize, JobResult)> {
    let start = Instant::now();
    let traces: Vec<_> = group
        .iter()
        .map(|&idx| cache.fetch(&jobs[idx].workload, jobs[idx].scale))
        .collect();
    let outputs: Vec<JobOutput> = if group.len() == 1 {
        vec![execute(&jobs[group[0]], &traces[0], engine)]
    } else {
        match &jobs[group[0]].kind {
            JobKind::Multiscalar(_) => {
                let configs: Vec<MsConfig> = group
                    .iter()
                    .map(|&idx| match &jobs[idx].kind {
                        JobKind::Multiscalar(config) => config.clone(),
                        _ => unreachable!("fused groups are homogeneous"),
                    })
                    .collect();
                mds_multiscalar::run_fused(&traces[0], &configs)
                    .into_iter()
                    .map(JobOutput::Multiscalar)
                    .collect()
            }
            JobKind::Superscalar(_) => {
                let configs: Vec<OooConfig> = group
                    .iter()
                    .map(|&idx| match &jobs[idx].kind {
                        JobKind::Superscalar(config) => *config,
                        _ => unreachable!("fused groups are homogeneous"),
                    })
                    .collect();
                mds_ooo::run_fused(traces[0].records(), &configs)
                    .into_iter()
                    .map(JobOutput::Superscalar)
                    .collect()
            }
            JobKind::Window(_) | JobKind::Summary => {
                unreachable!("only multiscalar and superscalar cells fuse")
            }
        }
    };
    drop(traces);
    for &idx in group {
        cache.release(&jobs[idx].workload, jobs[idx].scale);
    }
    let wall_ns = start.elapsed().as_nanos();
    group
        .iter()
        .zip(outputs)
        .map(|(&idx, output)| {
            (
                idx,
                JobResult {
                    id: jobs[idx].id.clone(),
                    output,
                    wall_ns,
                },
            )
        })
        .collect()
}

/// Replays one job's computation over a captured trace.
fn execute(job: &Job, trace: &Trace, engine: ReplayEngine) -> JobOutput {
    match &job.kind {
        JobKind::Multiscalar(config) => JobOutput::Multiscalar(match engine {
            ReplayEngine::Scratch => {
                Multiscalar::new(config.clone()).run_trace(trace.records().iter().copied())
            }
            ReplayEngine::Fork => mds_multiscalar::run_planned(trace, config),
        }),
        JobKind::Window(config) => {
            let mut analyzer = WindowAnalyzer::new(config.clone());
            for d in trace.records() {
                analyzer.observe(d);
            }
            JobOutput::Window(analyzer.finish())
        }
        JobKind::Superscalar(config) => {
            let mut sim = OooSim::new(*config);
            for d in trace.records() {
                sim.observe(d);
            }
            JobOutput::Superscalar(sim.finish())
        }
        JobKind::Summary => JobOutput::Summary(trace.summary()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_core::Policy;
    use mds_multiscalar::MsConfig;
    use mds_ooo::WindowConfig;
    use mds_workloads::{by_name, Scale};

    fn small_grid() -> Grid {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        for wl in [&compress, &sc] {
            grid.summary(wl);
            grid.window(wl, WindowConfig::default());
            for policy in [Policy::Never, Policy::Always, Policy::Sync] {
                grid.multiscalar(wl, MsConfig::paper(4, policy));
            }
        }
        grid
    }

    #[test]
    fn parallel_json_is_byte_identical_to_serial() {
        let grid = small_grid();
        let serial = Runner::new(1).run(&grid);
        let parallel = Runner::new(4).run(&grid);
        assert_eq!(
            serial.results_json().to_string(),
            parallel.results_json().to_string()
        );
        assert_eq!(
            serial.results_json().pretty(),
            parallel.results_json().pretty()
        );
    }

    #[test]
    fn one_emulation_per_workload() {
        let grid = small_grid();
        let outcome = Runner::new(4).run(&grid);
        assert_eq!(
            outcome.stats.cache_misses as usize,
            grid.distinct_workloads()
        );
        assert_eq!(
            outcome.stats.cache_hits as usize,
            grid.len() - grid.distinct_workloads()
        );
    }

    #[test]
    fn runner_matches_direct_simulation() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.multiscalar(&compress, MsConfig::paper(4, Policy::Always));
        let outcome = Runner::new(1).run(&grid);
        let via_runner = outcome.results[0]
            .output
            .as_multiscalar()
            .expect("multiscalar cell")
            .clone();
        let direct = Multiscalar::new(MsConfig::paper(4, Policy::Always))
            .run(&compress.build(Scale::Tiny))
            .unwrap();
        assert_eq!(via_runner.cycles, direct.cycles);
        assert_eq!(via_runner.misspeculations, direct.misspeculations);
        assert_eq!(
            via_runner.to_json().to_string(),
            direct.to_json().to_string()
        );
    }

    #[test]
    fn stats_render_mentions_cache_and_utilization() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&compress).summary(&compress);
        let outcome = Runner::new(2).run(&grid);
        let text = outcome.stats.render();
        assert!(text.contains("trace cache: 1 emulation, 1 reuse"), "{text}");
        assert!(text.contains("utilization"), "{text}");
        assert!(outcome.stats.utilization() >= 0.0);
    }

    #[test]
    fn shared_cache_amortizes_across_runs() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&compress);
        let cache = Arc::new(TraceCache::persistent());
        let runner = Runner::new(2).with_shared_cache(Arc::clone(&cache));

        let first = runner.run(&grid);
        assert_eq!(first.stats.cache_misses, 1, "first run emulates");
        let second = runner.run(&grid);
        assert_eq!(second.stats.cache_misses, 0, "second run reuses");
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(cache.misses(), 1, "one emulation across both runs");
        assert!(cache.resident() >= 1, "persistent cache pins the trace");
        assert_eq!(
            first.results_json().to_string(),
            second.results_json().to_string()
        );
    }

    #[test]
    fn concurrent_submissions_share_one_emulation() {
        let compress = by_name("compress").unwrap();
        let cache = Arc::new(TraceCache::persistent());
        let runner = Runner::new(1).with_shared_cache(Arc::clone(&cache));
        let docs: Vec<String> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let runner = runner.clone();
                    s.spawn(move || {
                        let mut grid = Grid::new(Scale::Tiny);
                        grid.summary(&compress);
                        runner.run(&grid).results_json().to_string()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(cache.misses(), 1, "one emulation across 4 submissions");
        assert!(docs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn panicking_workload_yields_a_labeled_run_error() {
        fn broken_build(_: Scale) -> mds_isa::Program {
            panic!("synthetic workload bug")
        }
        let compress = by_name("compress").unwrap();
        let broken = mds_workloads::Workload {
            name: "broken",
            builder: mds_workloads::Builder::Static(broken_build),
            ..compress
        };
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&broken);
        grid.summary(&compress);
        let err = Runner::new(2).try_run(&grid).unwrap_err();
        assert_eq!(err.failures.len(), 1, "only the broken job fails");
        assert_eq!(err.failures[0].id, "broken/summary");
        assert!(
            err.failures[0].message.contains("synthetic workload bug"),
            "{err}"
        );
        assert!(err.to_string().contains("broken/summary"));
    }

    #[test]
    fn scratch_and_fork_engines_emit_identical_results() {
        let grid = small_grid();
        let scratch = Runner::new(2)
            .try_run_with_engine(&grid, ReplayEngine::Scratch)
            .unwrap();
        let fork = Runner::new(2)
            .try_run_with_engine(&grid, ReplayEngine::Fork)
            .unwrap();
        assert_eq!(
            scratch.results_json().to_string(),
            fork.results_json().to_string()
        );
        // Fusing cells must not change the cache accounting contract.
        assert_eq!(scratch.stats.cache_misses, fork.stats.cache_misses);
        assert_eq!(scratch.stats.cache_hits, fork.stats.cache_hits);
        assert_eq!(scratch.stats.jobs, fork.stats.jobs);
    }

    #[test]
    fn fork_engine_fuses_policy_twins_and_nothing_else() {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        for policy in Policy::ALL {
            grid.multiscalar(&compress, MsConfig::paper(4, policy));
        }
        for policy in [Policy::Never, Policy::Always] {
            grid.multiscalar(&compress, MsConfig::paper(8, policy));
        }
        grid.multiscalar(&sc, MsConfig::paper(4, Policy::Always));
        grid.summary(&compress);
        grid.window(&compress, WindowConfig::default());
        let jobs = grid.jobs();

        let scratch = plan_groups(jobs, ReplayEngine::Scratch);
        assert_eq!(scratch.len(), jobs.len(), "scratch never fuses");
        assert!(scratch.iter().all(|g| g.len() == 1));

        let fork = plan_groups(jobs, ReplayEngine::Fork);
        // Expected fusion: 6 policies at 4 stages -> one group; the two
        // 8-stage cells -> a second group (stages differ, so they are not
        // twins of the first); sc runs alone (different trace); window and
        // summary stay singletons.
        assert_eq!(fork.len(), 5, "{fork:?}");
        assert_eq!(fork[0], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(fork[1], vec![6, 7]);
        assert!(fork[2..].iter().all(|g| g.len() == 1));
    }

    #[test]
    fn fork_engine_fuses_superscalar_cells_by_trace() {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        for policy in [Policy::Never, Policy::Always, Policy::Esync] {
            grid.superscalar(
                &compress,
                mds_ooo::OooConfig {
                    policy,
                    ..Default::default()
                },
            );
        }
        grid.superscalar(
            &sc,
            mds_ooo::OooConfig {
                policy: Policy::Always,
                ..Default::default()
            },
        );
        let jobs = grid.jobs();
        let fork = plan_groups(jobs, ReplayEngine::Fork);
        assert_eq!(fork.len(), 2, "{fork:?}");
        assert_eq!(fork[0], vec![0, 1, 2]);
        assert_eq!(fork[1], vec![3]);

        let fused = Runner::new(2)
            .try_run_with_engine(&grid, ReplayEngine::Fork)
            .unwrap();
        let scratch = Runner::new(2)
            .try_run_with_engine(&grid, ReplayEngine::Scratch)
            .unwrap();
        assert_eq!(
            fused.results_json().to_string(),
            scratch.results_json().to_string()
        );
    }

    #[test]
    fn panicking_workload_fails_every_member_of_its_group() {
        fn broken_build(_: Scale) -> mds_isa::Program {
            panic!("synthetic workload bug")
        }
        let compress = by_name("compress").unwrap();
        let broken = mds_workloads::Workload {
            name: "broken",
            builder: mds_workloads::Builder::Static(broken_build),
            ..compress
        };
        let mut grid = Grid::new(Scale::Tiny);
        for policy in [Policy::Never, Policy::Always] {
            grid.multiscalar(&broken, MsConfig::paper(4, policy));
        }
        grid.summary(&compress);
        let err = Runner::new(2)
            .try_run_with_engine(&grid, ReplayEngine::Fork)
            .unwrap_err();
        assert_eq!(err.failures.len(), 2, "both fused cells fail: {err}");
        assert!(err.failures[0].id.starts_with("broken/ms/"));
        assert!(err.failures[1].id.starts_with("broken/ms/"));
        assert!(err.failures[0].message.contains("synthetic workload bug"));
    }

    #[test]
    fn engine_from_env_defaults_to_fork() {
        // Only documents the mapping; the env itself is process-global, so
        // the parse rules are exercised through explicit strings instead.
        assert_eq!(ReplayEngine::from_env(), ReplayEngine::Fork);
    }

    #[test]
    fn get_finds_results_by_id() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&compress);
        let outcome = Runner::new(1).run(&grid);
        assert!(outcome.get("compress/summary").is_some());
        assert!(outcome.get("nope").is_none());
    }
}
