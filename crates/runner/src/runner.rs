//! The engine: executes a [`Grid`] on the pool with the shared trace
//! cache and collects deterministic, submission-ordered results.

use crate::cache::TraceCache;
use crate::job::{Grid, Job, JobKind, JobOutput};
use crate::pool::{self, PoolReport};
use mds_harness::json::{Json, ToJson};
use mds_multiscalar::Multiscalar;
use mds_ooo::{OooSim, WindowAnalyzer};
use std::fmt::Write as _;
use std::time::Instant;

/// One executed job: its output plus scheduling metadata.
///
/// The metadata (wall time, worker id) exists for observability only and
/// never enters result JSON — that is what keeps parallel output
/// byte-identical to serial.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's id, copied from the grid.
    pub id: String,
    /// What the job computed.
    pub output: JobOutput,
    /// Wall-clock nanoseconds this job took (replay only; a cache miss
    /// also pays the emulation inside this figure).
    pub wall_ns: u128,
}

/// Aggregate observability for one [`Runner::run`].
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Cells executed.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Trace-cache fetches served from memory.
    pub cache_hits: u64,
    /// Trace-cache fetches that ran the emulator (== emulations).
    pub cache_misses: u64,
    /// High-water mark of resident trace bytes.
    pub peak_trace_bytes: usize,
    /// End-to-end wall time of the run, nanoseconds.
    pub wall_ns: u128,
    /// Per-worker busy time and executed-job counts.
    pub pool: PoolReport,
}

impl RunStats {
    /// Mean worker utilization: busy time over (workers × wall time).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.pool.workers == 0 {
            return 0.0;
        }
        let denom = (self.pool.workers as u128 * self.wall_ns) as f64;
        self.pool.total_busy_ns() as f64 / denom
    }

    /// Renders the end-of-run observability block (for stderr — this is
    /// timing data, deliberately kept out of result JSON).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "runner: {} jobs on {} worker{} in {:.2}s ({:.0}% utilization)",
            self.jobs,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall_ns as f64 / 1e9,
            self.utilization() * 100.0,
        );
        let _ = writeln!(
            out,
            "runner: trace cache: {} emulation{}, {} reuse{}, peak {:.1} MiB",
            self.cache_misses,
            if self.cache_misses == 1 { "" } else { "s" },
            self.cache_hits,
            if self.cache_hits == 1 { "" } else { "s" },
            self.peak_trace_bytes as f64 / (1024.0 * 1024.0),
        );
        for (who, (busy, n)) in self
            .pool
            .busy_ns
            .iter()
            .zip(self.pool.executed.iter())
            .enumerate()
        {
            let _ = writeln!(
                out,
                "runner:   worker {who}: {n} job{} in {:.2}s busy",
                if *n == 1 { "" } else { "s" },
                *busy as f64 / 1e9,
            );
        }
        if self.pool.steals > 0 {
            let _ = writeln!(out, "runner:   {} steal(s)", self.pool.steals);
        }
        out
    }
}

/// Everything a run produced: ordered results plus observability.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// One result per grid cell, **in submission order** — independent of
    /// completion order, so serial and parallel runs agree byte-for-byte.
    pub results: Vec<JobResult>,
    /// Timing/cache/utilization counters for the whole run.
    pub stats: RunStats,
}

impl RunOutcome {
    /// The deterministic JSON document for this run: an array of
    /// `{id, output}` objects in submission order. Contains no timing
    /// data, worker ids, or anything else schedule-dependent.
    pub fn results_json(&self) -> Json {
        Json::Array(
            self.results
                .iter()
                .map(|r| {
                    Json::object()
                        .field("id", r.id.as_str())
                        .field("output", r.output.to_json())
                })
                .collect(),
        )
    }

    /// Looks up one result by job id.
    pub fn get(&self, id: &str) -> Option<&JobResult> {
        self.results.iter().find(|r| r.id == id)
    }
}

/// Executes experiment grids.
///
/// # Examples
///
/// ```
/// use mds_core::Policy;
/// use mds_multiscalar::MsConfig;
/// use mds_runner::{Grid, Runner};
/// use mds_workloads::{by_name, Scale};
///
/// let compress = by_name("compress").unwrap();
/// let mut grid = Grid::new(Scale::Tiny);
/// for policy in [Policy::Never, Policy::Always] {
///     grid.multiscalar(&compress, MsConfig::paper(4, policy));
/// }
///
/// let outcome = Runner::new(2).run(&grid);
/// assert_eq!(outcome.results.len(), 2);
/// // Two cells, one workload: exactly one emulation, one cache reuse.
/// assert_eq!(outcome.stats.cache_misses, 1);
/// assert_eq!(outcome.stats.cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Runner {
        Runner {
            workers: workers.max(1),
        }
    }

    /// A runner sized from `explicit` (e.g. a `--jobs` flag), falling back
    /// to `MDS_JOBS` and then the machine's available parallelism.
    pub fn from_env(explicit: Option<usize>) -> Runner {
        Runner::new(pool::job_count(explicit))
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every cell of `grid` and returns submission-ordered results.
    pub fn run(&self, grid: &Grid) -> RunOutcome {
        let jobs = grid.jobs();
        let cache = TraceCache::new(jobs);
        let start = Instant::now();
        let (results, pool_report) = pool::run_indexed(self.workers, jobs.len(), |idx| {
            let job = &jobs[idx];
            let job_start = Instant::now();
            let trace = cache.fetch(&job.workload, job.scale);
            let output = execute(job, &trace);
            drop(trace);
            cache.release(&job.workload, job.scale);
            JobResult {
                id: job.id.clone(),
                output,
                wall_ns: job_start.elapsed().as_nanos(),
            }
        });
        let wall_ns = start.elapsed().as_nanos();
        let stats = RunStats {
            jobs: jobs.len(),
            workers: self.workers,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            peak_trace_bytes: cache.peak_bytes(),
            wall_ns,
            pool: pool_report,
        };
        RunOutcome { results, stats }
    }
}

/// Replays one job's computation over a captured trace.
fn execute(job: &Job, trace: &mds_emu::Trace) -> JobOutput {
    match &job.kind {
        JobKind::Multiscalar(config) => {
            let sim = Multiscalar::new(config.clone());
            JobOutput::Multiscalar(sim.run_trace(trace.records().iter().copied()))
        }
        JobKind::Window(config) => {
            let mut analyzer = WindowAnalyzer::new(config.clone());
            for d in trace.records() {
                analyzer.observe(d);
            }
            JobOutput::Window(analyzer.finish())
        }
        JobKind::Superscalar(config) => {
            let mut sim = OooSim::new(*config);
            for d in trace.records() {
                sim.observe(d);
            }
            JobOutput::Superscalar(sim.finish())
        }
        JobKind::Summary => JobOutput::Summary(trace.summary()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_core::Policy;
    use mds_multiscalar::MsConfig;
    use mds_ooo::WindowConfig;
    use mds_workloads::{by_name, Scale};

    fn small_grid() -> Grid {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        for wl in [&compress, &sc] {
            grid.summary(wl);
            grid.window(wl, WindowConfig::default());
            for policy in [Policy::Never, Policy::Always, Policy::Sync] {
                grid.multiscalar(wl, MsConfig::paper(4, policy));
            }
        }
        grid
    }

    #[test]
    fn parallel_json_is_byte_identical_to_serial() {
        let grid = small_grid();
        let serial = Runner::new(1).run(&grid);
        let parallel = Runner::new(4).run(&grid);
        assert_eq!(
            serial.results_json().to_string(),
            parallel.results_json().to_string()
        );
        assert_eq!(
            serial.results_json().pretty(),
            parallel.results_json().pretty()
        );
    }

    #[test]
    fn one_emulation_per_workload() {
        let grid = small_grid();
        let outcome = Runner::new(4).run(&grid);
        assert_eq!(
            outcome.stats.cache_misses as usize,
            grid.distinct_workloads()
        );
        assert_eq!(
            outcome.stats.cache_hits as usize,
            grid.len() - grid.distinct_workloads()
        );
    }

    #[test]
    fn runner_matches_direct_simulation() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.multiscalar(&compress, MsConfig::paper(4, Policy::Always));
        let outcome = Runner::new(1).run(&grid);
        let via_runner = outcome.results[0]
            .output
            .as_multiscalar()
            .expect("multiscalar cell")
            .clone();
        let direct = Multiscalar::new(MsConfig::paper(4, Policy::Always))
            .run(&(compress.build)(Scale::Tiny))
            .unwrap();
        assert_eq!(via_runner.cycles, direct.cycles);
        assert_eq!(via_runner.misspeculations, direct.misspeculations);
        assert_eq!(
            via_runner.to_json().to_string(),
            direct.to_json().to_string()
        );
    }

    #[test]
    fn stats_render_mentions_cache_and_utilization() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&compress).summary(&compress);
        let outcome = Runner::new(2).run(&grid);
        let text = outcome.stats.render();
        assert!(text.contains("trace cache: 1 emulation, 1 reuse"), "{text}");
        assert!(text.contains("utilization"), "{text}");
        assert!(outcome.stats.utilization() >= 0.0);
    }

    #[test]
    fn get_finds_results_by_id() {
        let compress = by_name("compress").unwrap();
        let mut grid = Grid::new(Scale::Tiny);
        grid.summary(&compress);
        let outcome = Runner::new(1).run(&grid);
        assert!(outcome.get("compress/summary").is_some());
        assert!(outcome.get("nope").is_none());
    }
}
