//! The shared trace cache: one emulation per (workload, scale) per run.
//!
//! Every grid cell over the same workload replays the same committed
//! stream, so the cache materializes each stream exactly once — the first
//! job to ask performs the emulation inside a [`OnceLock`] initializer
//! (blocking any concurrent askers for the same key), and everyone else
//! clones the `Arc`. Reference counts are seeded from the job list up
//! front, so a trace is evicted the moment its last job releases it:
//! peak residency is bounded by the number of workloads *in flight*, not
//! the number in the grid.

use crate::job::Job;
use crate::pool::lock;
use mds_emu::Trace;
use mds_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Key = (&'static str, Scale);

struct Slot {
    /// The memoized trace. `OnceLock` gives exactly-once initialization
    /// even under concurrent fetches for the same workload.
    trace: Arc<OnceLock<Arc<Trace>>>,
    /// Jobs that still intend to fetch or hold this trace. `usize::MAX`
    /// means "unregistered key, never evict".
    remaining: usize,
}

/// A concurrency-safe, reference-counted cache of committed traces.
///
/// # Examples
///
/// ```
/// use mds_runner::{Grid, TraceCache};
/// use mds_workloads::{by_name, Scale};
///
/// let compress = by_name("compress").unwrap();
/// let mut grid = Grid::new(Scale::Tiny);
/// grid.summary(&compress).summary(&compress);
///
/// let cache = TraceCache::new(grid.jobs());
/// let a = cache.fetch(&compress, Scale::Tiny);
/// cache.release(&compress, Scale::Tiny);
/// let b = cache.fetch(&compress, Scale::Tiny);
/// cache.release(&compress, Scale::Tiny);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.resident(), 0); // last release evicted the slot
/// ```
pub struct TraceCache {
    /// Keyed slots; `Debug` summarizes rather than dumping trace data.
    slots: Mutex<HashMap<Key, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// High-water mark of simultaneously resident trace bytes.
    peak_bytes: AtomicUsize,
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache")
            .field("resident", &self.resident())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("peak_bytes", &self.peak_bytes())
            .finish()
    }
}

impl TraceCache {
    /// Builds a cache whose reference counts are seeded from `jobs`: each
    /// job contributes one fetch/release pair for its trace key.
    pub fn new(jobs: &[Job]) -> TraceCache {
        let mut slots: HashMap<Key, Slot> = HashMap::new();
        for job in jobs {
            slots
                .entry(job.trace_key())
                .or_insert_with(|| Slot {
                    trace: Arc::new(OnceLock::new()),
                    remaining: 0,
                })
                .remaining += 1;
        }
        TraceCache {
            slots: Mutex::new(slots),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }

    /// A persistent cache with no registered job list: every fetched
    /// trace is pinned resident until the cache is dropped.
    ///
    /// This is the long-lived serving configuration — a shared cache that
    /// amortizes emulation across many independent [`crate::Runner::run`]
    /// calls (the key space is the finite workload registry × three
    /// scales, so residency is naturally bounded).
    pub fn persistent() -> TraceCache {
        TraceCache::new(&[])
    }

    /// The committed trace for `workload` at `scale`, emulating it if no
    /// other job has yet.
    ///
    /// The per-key `OnceLock` serializes only askers of the *same*
    /// workload; distinct workloads emulate concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the workload's program fails to run to completion —
    /// registered workloads are total by construction, so a failure here
    /// is a workload bug, not an operational condition.
    pub fn fetch(&self, workload: &Workload, scale: Scale) -> Arc<Trace> {
        let slot_cell = {
            let mut slots = lock(&self.slots);
            let slot = slots.entry((workload.name, scale)).or_insert_with(|| Slot {
                trace: Arc::new(OnceLock::new()),
                remaining: usize::MAX,
            });
            Arc::clone(&slot.trace)
        };
        let mut initialized_here = false;
        let trace = slot_cell.get_or_init(|| {
            initialized_here = true;
            let program = workload.build(scale);
            let trace = Trace::capture(&program)
                .unwrap_or_else(|e| panic!("workload '{}' failed to emulate: {e}", workload.name));
            Arc::new(trace)
        });
        if initialized_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.note_resident();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(trace)
    }

    /// Releases one job's claim on a trace; the slot is evicted when the
    /// last registered claim is released.
    pub fn release(&self, workload: &Workload, scale: Scale) {
        let mut slots = lock(&self.slots);
        if let Some(slot) = slots.get_mut(&(workload.name, scale)) {
            if slot.remaining != usize::MAX {
                slot.remaining = slot.remaining.saturating_sub(1);
                if slot.remaining == 0 {
                    slots.remove(&(workload.name, scale));
                }
            }
        }
    }

    fn note_resident(&self) {
        let resident: usize = {
            let slots = lock(&self.slots);
            slots
                .values()
                .filter_map(|s| s.trace.get())
                .map(|t| t.resident_bytes())
                .sum()
        };
        self.peak_bytes.fetch_max(resident, Ordering::Relaxed);
    }

    /// Fetches that reused an already-captured trace.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fetches that had to run the emulator (== emulations performed).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of traces currently materialized and not yet evicted.
    pub fn resident(&self) -> usize {
        let slots = lock(&self.slots);
        slots.values().filter(|s| s.trace.get().is_some()).count()
    }

    /// High-water mark of simultaneously resident trace bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of trace data currently resident (for serving metrics).
    pub fn resident_bytes(&self) -> usize {
        let slots = lock(&self.slots);
        slots
            .values()
            .filter_map(|s| s.trace.get())
            .map(|t| t.resident_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use mds_workloads::by_name;

    fn summary_job(workload: &Workload, scale: Scale, n: usize) -> Job {
        Job {
            id: format!("{}/{n}", workload.name),
            workload: *workload,
            scale,
            kind: JobKind::Summary,
        }
    }

    #[test]
    fn one_emulation_per_key_under_concurrency() {
        let compress = by_name("compress").unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|n| summary_job(&compress, Scale::Tiny, n))
            .collect();
        let cache = TraceCache::new(&jobs);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| cache.fetch(&compress, Scale::Tiny)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(cache.misses(), 1, "exactly one emulation");
        assert_eq!(cache.hits(), 7);
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t), "all fetches share one Arc");
        }
        assert!(cache.peak_bytes() >= traces[0].resident_bytes());
    }

    #[test]
    fn eviction_waits_for_the_last_release() {
        let compress = by_name("compress").unwrap();
        let jobs: Vec<Job> = (0..2)
            .map(|n| summary_job(&compress, Scale::Tiny, n))
            .collect();
        let cache = TraceCache::new(&jobs);
        let _t = cache.fetch(&compress, Scale::Tiny);
        cache.release(&compress, Scale::Tiny);
        assert_eq!(cache.resident(), 1, "one claim still outstanding");
        cache.release(&compress, Scale::Tiny);
        assert_eq!(cache.resident(), 0, "last release evicts");
    }

    #[test]
    fn distinct_keys_are_distinct_traces() {
        let compress = by_name("compress").unwrap();
        let sc = by_name("sc").unwrap();
        let jobs = vec![
            summary_job(&compress, Scale::Tiny, 0),
            summary_job(&compress, Scale::Tiny, 1),
        ];
        let cache = TraceCache::new(&jobs);
        let a = cache.fetch(&compress, Scale::Tiny);
        // `sc` is not registered in the job list: cached but never evicted.
        let b = cache.fetch(&sc, Scale::Tiny);
        assert_eq!(cache.misses(), 2);
        assert!(!Arc::ptr_eq(&a, &b));
        cache.release(&sc, Scale::Tiny);
        assert_eq!(cache.resident(), 2, "unregistered keys are pinned");
    }

    #[test]
    fn refetch_after_eviction_re_emulates() {
        let compress = by_name("compress").unwrap();
        let jobs = vec![summary_job(&compress, Scale::Tiny, 0)];
        let cache = TraceCache::new(&jobs);
        let _ = cache.fetch(&compress, Scale::Tiny);
        cache.release(&compress, Scale::Tiny);
        // The slot is gone; a late fetch re-emulates under a fresh pin.
        let _ = cache.fetch(&compress, Scale::Tiny);
        assert_eq!(cache.misses(), 2);
    }
}
