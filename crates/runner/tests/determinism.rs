//! Property test: runner output is a pure function of the grid — for any
//! random small grid, a fully serial run (`jobs = 1`) and a 4-worker run
//! produce byte-identical result JSON, and the trace cache emulates each
//! distinct workload exactly once regardless of schedule.

use mds_core::Policy;
use mds_harness::prelude::*;
use mds_multiscalar::MsConfig;
use mds_ooo::{OooConfig, WindowConfig};
use mds_runner::{Grid, Job, JobKind, Runner};
use mds_workloads::{int92_suite, Scale};

/// One randomly chosen grid cell: `(workload index, kind selector)`.
///
/// Kind 0 is a trace summary, 1 a window analysis, 2 a superscalar run,
/// and 3.. a Multiscalar run whose stage count and policy are also drawn
/// from the selector.
fn build_grid(cells: &[(usize, usize)]) -> Grid {
    let suite = int92_suite();
    let mut grid = Grid::new(Scale::Tiny);
    for (i, &(wl_idx, kind)) in cells.iter().enumerate() {
        let wl = suite[wl_idx % suite.len()];
        let policy = Policy::ALL[kind % Policy::ALL.len()];
        let job_kind = match kind % 6 {
            0 => JobKind::Summary,
            1 => JobKind::Window(WindowConfig {
                window_sizes: vec![16, 64],
                ddc_sizes: vec![32],
            }),
            2 => JobKind::Superscalar(OooConfig {
                policy,
                ..Default::default()
            }),
            k => JobKind::Multiscalar(MsConfig::paper(if k % 2 == 0 { 4 } else { 8 }, policy)),
        };
        grid.push(Job {
            id: format!("{i}/{}/{}", wl.name, kind % 6),
            workload: wl,
            scale: Scale::Tiny,
            kind: job_kind,
        });
    }
    grid
}

properties! {
    #![config(PropConfig { cases: 6, ..PropConfig::default() })]

    /// Serial and 4-worker runs of the same random grid serialize to the
    /// same bytes, and both emulate each distinct workload exactly once.
    #[test]
    fn parallel_results_are_byte_identical_to_serial(
        cells in vec_of((0usize..5, 0usize..12), 1..12),
    ) {
        let grid = build_grid(&cells);
        let serial = Runner::new(1).run(&grid);
        let parallel = Runner::new(4).run(&grid);

        prop_assert_eq!(
            serial.results_json().pretty(),
            parallel.results_json().pretty()
        );

        let distinct = grid.distinct_workloads() as u64;
        for outcome in [&serial, &parallel] {
            prop_assert_eq!(outcome.stats.cache_misses, distinct);
            prop_assert_eq!(
                outcome.stats.cache_hits,
                grid.len() as u64 - distinct
            );
        }
    }
}
