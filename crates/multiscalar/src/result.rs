//! Aggregate results of a Multiscalar simulation run.

use mds_core::PredictionBreakdown;
use mds_harness::json::{Json, ToJson};
use mds_mem::CacheStats;
use mds_sim::stats::Percent;

/// Everything a Multiscalar run measures.
///
/// The reproduction harness derives every Multiscalar table/figure of the
/// paper from these fields: mis-speculation counts (table 6), DDC miss
/// rates (table 7), the prediction breakdown (table 8), mis-speculations
/// per committed load (table 9), and IPC/speedups (figures 5–7).
#[derive(Debug, Clone, Default)]
pub struct MsResult {
    /// Total cycles (commit time of the last task).
    pub cycles: u64,
    /// Committed dynamic instructions.
    pub instructions: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Dynamic tasks executed.
    pub tasks: u64,
    /// Memory dependence mis-speculations (squash events).
    pub misspeculations: u64,
    /// Task-level control predictions made.
    pub control_predictions: u64,
    /// Task-level control mispredictions.
    pub control_mispredicts: u64,
    /// Loads delayed by MDST synchronization (committed attempts).
    pub synchronized_loads: u64,
    /// Loads released by the deadlock-avoidance rule (incomplete
    /// synchronization, a false dependence prediction this instance).
    pub false_dep_releases: u64,
    /// Dependence-prediction breakdown (predictor policies only).
    pub breakdown: PredictionBreakdown,
    /// Shared data-cache hit/miss totals.
    pub dcache: CacheStats,
    /// Aggregate per-unit instruction-cache hit/miss totals.
    pub icache: CacheStats,
    /// Memory-bus transactions served.
    pub bus_transactions: u64,
    /// `(ddc_size, hits, misses)` measured on the mis-speculation stream.
    pub ddc: Vec<(usize, u64, u64)>,
}

impl MsResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mis-speculations per committed load — the table 9 metric.
    pub fn misspec_per_committed_load(&self) -> f64 {
        if self.committed_loads == 0 {
            0.0
        } else {
            self.misspeculations as f64 / self.committed_loads as f64
        }
    }

    /// Task-prediction accuracy in percent.
    pub fn control_accuracy(&self) -> Percent {
        Percent::of(
            self.control_predictions - self.control_mispredicts,
            self.control_predictions,
        )
    }

    /// DDC miss rate for one configured size (table 7 cell).
    pub fn ddc_miss_rate(&self, size: usize) -> Option<Percent> {
        self.ddc
            .iter()
            .find(|(s, _, _)| *s == size)
            .map(|&(_, h, m)| Percent::of(m, h + m))
    }

    /// Percentage speedup of this run over a baseline run of the same
    /// workload (positive = this run is faster).
    pub fn speedup_over(&self, baseline: &MsResult) -> f64 {
        mds_sim::stats::speedup_percent(baseline.cycles, self.cycles)
    }
}

impl ToJson for MsResult {
    fn to_json(&self) -> Json {
        Json::object()
            .field("cycles", self.cycles)
            .field("instructions", self.instructions)
            .field("ipc", self.ipc())
            .field("committed_loads", self.committed_loads)
            .field("committed_stores", self.committed_stores)
            .field("tasks", self.tasks)
            .field("misspeculations", self.misspeculations)
            .field(
                "misspec_per_committed_load",
                self.misspec_per_committed_load(),
            )
            .field("control_predictions", self.control_predictions)
            .field("control_mispredicts", self.control_mispredicts)
            .field("synchronized_loads", self.synchronized_loads)
            .field("false_dep_releases", self.false_dep_releases)
            .field("breakdown", self.breakdown)
            .field("dcache", self.dcache)
            .field("icache", self.icache)
            .field("bus_transactions", self.bus_transactions)
            .field(
                "ddc",
                Json::Array(
                    self.ddc
                        .iter()
                        .map(|&(size, hits, misses)| {
                            Json::object()
                                .field("size", size)
                                .field("hits", hits)
                                .field("misses", misses)
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = MsResult {
            cycles: 1000,
            instructions: 2500,
            committed_loads: 500,
            misspeculations: 50,
            control_predictions: 100,
            control_mispredicts: 10,
            ddc: vec![(64, 90, 10)],
            ..Default::default()
        };
        assert_eq!(r.ipc(), 2.5);
        assert_eq!(r.misspec_per_committed_load(), 0.1);
        assert_eq!(r.control_accuracy().value(), 90.0);
        assert_eq!(r.ddc_miss_rate(64).unwrap().value(), 10.0);
        assert!(r.ddc_miss_rate(128).is_none());
    }

    #[test]
    fn zero_safe() {
        let r = MsResult::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.misspec_per_committed_load(), 0.0);
        assert_eq!(r.control_accuracy().value(), 0.0);
    }

    #[test]
    fn json_includes_core_fields() {
        let r = MsResult {
            cycles: 10,
            instructions: 20,
            ddc: vec![(64, 9, 1)],
            ..Default::default()
        };
        let j = r.to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("ipc").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            j.get("ddc").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn speedup_is_relative_to_baseline_cycles() {
        let fast = MsResult {
            cycles: 500,
            ..Default::default()
        };
        let slow = MsResult {
            cycles: 1000,
            ..Default::default()
        };
        assert_eq!(fast.speedup_over(&slow), 100.0);
        assert!(slow.speedup_over(&fast) < 0.0);
    }
}
