//! The planned replay engine: branch-light Multiscalar replay over a
//! [`ReplayPlan`], with cross-policy prefix sharing ("fork replay").
//!
//! # Why a second engine
//!
//! The paper's figures replay one committed trace under six speculation
//! policies per grid cell. The legacy engine ([`crate::Multiscalar`])
//! re-walks the raw [`DynInst`](mds_emu::DynInst) stream per policy:
//! re-decoding operands, re-splitting tasks (cloning every record), and
//! re-discovering store→load overlaps through per-task hash maps — all
//! work that is a pure function of the trace, not of the policy or the
//! timing. This engine replays the [`ReplayPlan`] instead: operands,
//! task ranges, functional-unit classes, and memory dependences are
//! pre-resolved into dense arrays, so an attempt is a sequential scan
//! with array indexing where the legacy engine chases hash maps.
//!
//! # Fork semantics
//!
//! All six policies agree on every scheduling decision until the first
//! load that *could* have an in-window producer. Concretely, before the
//! task index [`ReplayPlan::fork_task`] returns:
//!
//! - no load overlaps a store in its task window, so WAIT/PSYNC/ALWAYS
//!   behave identically and no violation (hence no squash, no MDPT
//!   training, no DDC observation) can occur;
//! - every window task is store-free from the perspective of any task
//!   that issues a load, so NEVER's "wait for all older store addresses"
//!   bound is 0 and changes nothing;
//! - SYNC/ESYNC consult an MDPT that has never been trained (training
//!   requires a violation), and predicting from an empty MDPT is
//!   side-effect-free, so they degrade to ALWAYS exactly.
//!
//! [`run_fused`] exploits this: configurations that are
//! [`forkable_twins`] (identical hardware, differing only in policy /
//! predictor configuration) share one simulation of the common prefix;
//! at the fork task each member receives a clone of the lightweight
//! simulator state — caches, bus, window records, sequencer state,
//! in-order commit clocks — plus a fresh (still-empty) prediction unit
//! and DDCs, and continues independently. The only per-policy state that
//! accumulates before the fork is the table 8 prediction breakdown
//! (predictor policies record one `(no prediction, no dependence)` entry
//! per load), which is reconstructed arithmetically at the fork.
//!
//! A fork is never *invalidated*: the fork point is chosen so that the
//! prefix is provably policy-independent, rather than optimistically and
//! rolled back. Traces whose first window-store/load interaction happens
//! immediately (common in store-heavy loops) simply fork at task 0 or 1
//! and share little; the planned engine's flat-array replay still makes
//! the fused run cheaper than six scratch walks.
//!
//! Equivalence with the legacy engine is enforced three ways: unit tests
//! here, a `properties!` fuzz test over random traces (all policies),
//! and the CI identity gate's `MDS_REPLAY=scratch` / `fork` comparison.

use crate::config::MsConfig;
use crate::exec::{LoadEvent, Ports, Shared, Violation, REGS};
use crate::result::MsResult;
use mds_core::{Ddc, DepEdge, Policy, SyncUnit, SyncUnitConfig, TagScheme};
use mds_emu::plan::{
    ReplayPlan, FU_BRANCH, FU_COMPLEX, FU_FP, F_CONTROL, F_MEM, F_STORE, NONE, NO_REG,
};
use mds_emu::Trace;
use mds_harness::hash::FxHashSet;
use mds_isa::{Opcode, Pc};
use mds_mem::{BankedCache, Bus, Cache};
use mds_predict::{LruTable, PathHistory, PathPredictor};
use std::collections::VecDeque;

/// The finalized timing state of a window task, planned-engine edition.
///
/// Everything the legacy `TaskRecord` kept in hash maps lives in the
/// [`ReplayPlan`] instead; the record only carries what depends on
/// timing: final register write times, per-store completion times (in
/// task store order), and the store address-ready bound. Task identity,
/// stage, and start PC are recovered from the record's window position.
#[derive(Debug, Clone)]
struct PRecord {
    /// Final write time per dense register index, or [`NO_TIME`].
    last_write: [u64; REGS],
    /// Completion time per store, indexed by within-task store ordinal.
    store_complete: Vec<u64>,
    max_store_addr_ready: u64,
}

/// Sentinel for "this register was never written" / "not yet computed".
/// Real completion times are cycle counts and never reach `u64::MAX`;
/// a plain sentinel keeps the per-attempt register arrays half the size
/// of `[Option<u64>; REGS]`, and these arrays are copied per task.
const NO_TIME: u64 = u64::MAX;

/// Sentinel for "no fetch block yet". Real blocks are `(pc * 4) & !63`
/// with a 32-bit `pc`, far below `u64::MAX`.
const NO_BLOCK: u64 = u64::MAX;

/// Availability time of operand `di`: the intra-task write if this
/// attempt produced one, else the memoized cross-task resolution.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn operand_avail(
    di: usize,
    epoch: u32,
    local_write: &[u64; REGS],
    write_epoch: &[u32; REGS],
    cross_cache: &mut [u64; REGS],
    cross_epoch: &mut [u32; REGS],
    window: &VecDeque<PRecord>,
    win_base: usize,
    stage: usize,
    stages: usize,
    ring_latency: u64,
) -> u64 {
    if write_epoch[di] == epoch {
        local_write[di]
    } else {
        if cross_epoch[di] != epoch {
            cross_epoch[di] = epoch;
            cross_cache[di] = resolve_cross(window, di, win_base, stage, stages, ring_latency);
        }
        cross_cache[di]
    }
}

/// Reusable attempt-local state (the planned engine's `ExecScratch`).
#[derive(Debug)]
struct PScratch {
    issue: Ports,
    simple: Ports,
    complex: Ports,
    fp: Ports,
    branch: Ports,
    mem: Ports,
    retire: RetireRing,
    synced_edges: FxHashSet<DepEdge>,
    violations: Vec<Violation>,
    /// Register write times of the most recent attempt (copied into the
    /// committed `PRecord`; living here avoids moving 512 B through the
    /// attempt's return value on every task). An entry is valid only when
    /// its `write_epoch` tag matches `reg_epoch` — epoch-tagging lets an
    /// attempt start without zeroing a kilobyte of register arrays.
    last_write: [u64; REGS],
    write_epoch: [u32; REGS],
    /// Memoized cross-task resolution for the current attempt, tagged by
    /// `cross_epoch` the same way.
    cross_cache: [u64; REGS],
    cross_epoch: [u32; REGS],
    /// Live epoch for the register arrays; bumped once per attempt.
    reg_epoch: u32,
    /// Pool backing `PRecord::store_complete`.
    store_vecs: Vec<Vec<u64>>,
    /// Pool backing `PAttempt::load_events`.
    event_vecs: Vec<Vec<LoadEvent>>,
}

impl Default for PScratch {
    fn default() -> PScratch {
        PScratch {
            issue: Ports::default(),
            simple: Ports::default(),
            complex: Ports::default(),
            fp: Ports::default(),
            branch: Ports::default(),
            mem: Ports::default(),
            retire: RetireRing::default(),
            synced_edges: FxHashSet::default(),
            violations: Vec::new(),
            last_write: [NO_TIME; REGS],
            write_epoch: [0; REGS],
            cross_cache: [NO_TIME; REGS],
            cross_epoch: [0; REGS],
            reg_epoch: 0,
            store_vecs: Vec::new(),
            event_vecs: Vec::new(),
        }
    }
}

/// Sliding instruction-window occupancy: a fixed-capacity ring of retire
/// times. Replaces a `VecDeque` on the hottest per-record path — no
/// growth checks, no branchy modulo.
#[derive(Debug, Default)]
struct RetireRing {
    buf: Vec<u64>,
    cap: usize,
    head: usize,
    len: usize,
}

impl RetireRing {
    fn reset(&mut self, cap: usize) {
        if self.buf.len() < cap {
            self.buf.resize(cap, 0);
        }
        self.cap = cap;
        self.head = 0;
        self.len = 0;
    }

    /// At dispatch: when the window is full, frees the oldest slot and
    /// returns its retire time (the dispatch lower bound).
    #[inline]
    fn free_oldest_if_full(&mut self) -> Option<u64> {
        if self.len >= self.cap {
            let freed = self.buf[self.head];
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.len -= 1;
            Some(freed)
        } else {
            None
        }
    }

    #[inline]
    fn push(&mut self, complete: u64) {
        let mut tail = self.head + self.len;
        if tail >= self.cap {
            tail -= self.cap;
        }
        self.buf[tail] = complete;
        self.len += 1;
    }
}

impl PScratch {
    fn take_store_vec(&mut self) -> Vec<u64> {
        self.store_vecs.pop().unwrap_or_default()
    }

    fn put_store_vec(&mut self, mut v: Vec<u64>) {
        v.clear();
        self.store_vecs.push(v);
    }

    fn take_event_vec(&mut self) -> Vec<LoadEvent> {
        self.event_vecs.pop().unwrap_or_default()
    }

    fn put_event_vec(&mut self, mut v: Vec<LoadEvent>) {
        v.clear();
        self.event_vecs.push(v);
    }
}

/// The result of one planned execution attempt (mirrors `AttemptOutcome`).
/// Register write times stay behind in [`PScratch::last_write`].
struct PAttempt {
    max_completion: u64,
    last_branch_completion: u64,
    store_complete: Vec<u64>,
    max_store_addr_ready: u64,
    violation: Option<Violation>,
    load_events: Vec<LoadEvent>,
    synchronized_loads: u64,
    false_dep_releases: u64,
}

/// Cross-task register resolution over planned window records. The
/// producer's stage is derived from its window position (task indices in
/// the window are consecutive, ending at `win_base + window.len()`).
fn resolve_cross(
    window: &VecDeque<PRecord>,
    dense: usize,
    win_base: usize,
    consumer_stage: usize,
    stages: usize,
    ring_latency: u64,
) -> u64 {
    for (j, rec) in window.iter().enumerate().rev() {
        let t = rec.last_write[dense];
        if t != NO_TIME {
            let producer_stage = (win_base + j) % stages;
            let hops = (consumer_stage + stages - producer_stage) % stages;
            return t + hops as u64 * ring_latency;
        }
    }
    0
}

/// One timing attempt of task `k`, scheduled over the plan's arrays.
/// Replicates `exec::execute_attempt` decision-for-decision; see that
/// function for the architectural commentary.
#[allow(clippy::too_many_arguments)]
fn planned_attempt(
    plan: &ReplayPlan,
    k: usize,
    t0: u64,
    stage: usize,
    window: &VecDeque<PRecord>,
    shared: &mut Shared<'_>,
    scratch: &mut PScratch,
    lat: &[u64],
) -> PAttempt {
    let config = shared.config;
    let stages = config.stages;
    let win_base = k - window.len();

    scratch.issue.reset(config.issue_width, t0);
    scratch.simple.reset(config.simple_int_units, t0);
    scratch.complex.reset(config.complex_int_units, t0);
    scratch.fp.reset(config.fp_units, t0);
    scratch.branch.reset(config.branch_units, t0);
    scratch.mem.reset(config.mem_units, t0);
    scratch.retire.reset(config.window);
    scratch.synced_edges.clear();
    scratch.violations.clear();
    scratch.reg_epoch = scratch.reg_epoch.wrapping_add(1);
    if scratch.reg_epoch == 0 {
        // Epoch wrapped (after 2^32 attempts): stale tags could alias the
        // new epoch, so hard-clear once and restart from 1.
        scratch.write_epoch = [0; REGS];
        scratch.cross_epoch = [0; REGS];
        scratch.reg_epoch = 1;
    }
    let mut store_complete = scratch.take_store_vec();
    let mut load_events = scratch.take_event_vec();
    let PScratch {
        issue: issue_ports,
        simple: simple_ports,
        complex: complex_ports,
        fp: fp_ports,
        branch: branch_ports,
        mem: mem_ports,
        retire,
        synced_edges,
        violations,
        last_write: local_write,
        write_epoch,
        cross_cache,
        cross_epoch,
        reg_epoch,
        ..
    } = scratch;
    let epoch = *reg_epoch;

    let mut fetch_clock = t0;
    let mut cur_block: u64 = NO_BLOCK;
    let mut in_group: u32 = 0;

    let mut intra_addr_ready: u64 = 0;
    let store_base = plan.task_store_start[k] as usize;
    let mut max_store_addr_ready: u64 = 0;

    let window_addr_ready = window
        .iter()
        .map(|r| r.max_store_addr_ready)
        .max()
        .unwrap_or(0);

    let mut max_completion = t0;
    let mut last_branch_completion = t0;
    let mut synchronized_loads = 0u64;
    let mut false_dep_releases = 0u64;

    // Hoist the task's slice of every plan array once; indexing by the
    // local offset `j` lets the per-record loop run bounds-check-free.
    let range = plan.task_range(k);
    let n = range.len();
    let flags_a = &plan.flags[range.clone()];
    let pc_a = &plan.pc[range.clone()];
    let op_a = &plan.op[range.clone()];
    let fu_a = &plan.fu[range.clone()];
    let src1_a = &plan.src1[range.clone()];
    let src2_a = &plan.src2[range.clone()];
    let dst_a = &plan.dst[range.clone()];
    let addr_a = &plan.addr[range.clone()];
    let mem_ord_a = &plan.mem_ord[range];
    assert!(
        pc_a.len() == n
            && op_a.len() == n
            && fu_a.len() == n
            && src1_a.len() == n
            && src2_a.len() == n
            && dst_a.len() == n
            && addr_a.len() == n
            && mem_ord_a.len() == n
    );

    for j in 0..n {
        let flags = flags_a[j];

        // ---- Fetch through the per-unit I-cache ------------------------
        let block = ((pc_a[j] as u64) * 4) & !63;
        if cur_block != block || in_group >= config.fetch_width {
            if cur_block != NO_BLOCK {
                fetch_clock += 1;
            }
            if !shared.icache.access(block, false) {
                fetch_clock = shared.bus.request(fetch_clock, 16);
            }
            cur_block = block;
            in_group = 0;
        }
        in_group += 1;
        let mut dispatch = fetch_clock;

        // ---- Instruction window occupancy ------------------------------
        if let Some(freed) = retire.free_oldest_if_full() {
            dispatch = dispatch.max(freed);
        }

        // ---- Operand readiness (intra-task dataflow + ring) ------------
        let mut ready = dispatch;
        let mut base_ready = dispatch; // address operand only (for stores)
        let s1 = src1_a[j];
        if s1 != NO_REG {
            let avail = operand_avail(
                s1 as usize,
                epoch,
                local_write,
                write_epoch,
                cross_cache,
                cross_epoch,
                window,
                win_base,
                stage,
                stages,
                config.ring_latency,
            );
            ready = ready.max(avail);
            base_ready = base_ready.max(avail);
        }
        let s2 = src2_a[j];
        if s2 != NO_REG {
            let avail = operand_avail(
                s2 as usize,
                epoch,
                local_write,
                write_epoch,
                cross_cache,
                cross_epoch,
                window,
                win_base,
                stage,
                stages,
                config.ring_latency,
            );
            ready = ready.max(avail);
        }

        // ---- Schedule on the functional units --------------------------
        let complete = if flags & F_MEM != 0 {
            let addr = addr_a[j];
            if flags & F_STORE != 0 {
                intra_addr_ready = intra_addr_ready.max(base_ready);
                max_store_addr_ready = max_store_addr_ready.max(base_ready);
                let start = mem_ports.claim(issue_ports.claim(ready, 1), 1);
                let complete = shared.dcache.access(start, addr, true, shared.bus).done_at;
                store_complete.push(complete);
                complete
            } else {
                // ---- Load: pre-resolved intra forwarding ---------------
                let lo = mem_ord_a[j] as usize;
                let mut ready_mem = ready.max(intra_addr_ready);
                let intra = plan.load_intra[lo];
                if intra != NONE {
                    ready_mem = ready_mem.max(store_complete[intra as usize - store_base]);
                }

                // Pre-resolved inter-task producer, if still in window:
                // `(task index, store completion, store pc)`.
                let inter = plan.load_inter[lo];
                let producer: Option<(usize, u64, Pc)> = if inter != NONE {
                    let pt = plan.store_task[inter as usize] as usize;
                    if pt >= win_base {
                        let rec = &window[pt - win_base];
                        let local = (inter - plan.task_store_start[pt]) as usize;
                        Some((
                            pt,
                            rec.store_complete[local],
                            plan.pc[plan.store_rec[inter as usize] as usize],
                        ))
                    } else {
                        None
                    }
                } else {
                    None
                };

                let ready_before_sync = ready_mem;
                let mut event: Option<LoadEvent> = None;
                let mut may_violate = false;

                match config.policy {
                    Policy::Never => {
                        ready_mem = ready_mem.max(window_addr_ready);
                        if let Some((_, c, _)) = producer {
                            ready_mem = ready_mem.max(c);
                        }
                    }
                    Policy::Wait => {
                        if let Some((_, c, _)) = producer {
                            ready_mem = ready_mem.max(window_addr_ready).max(c);
                        }
                    }
                    Policy::PSync => {
                        if let Some((_, c, _)) = producer {
                            ready_mem = ready_mem.max(c);
                        }
                    }
                    Policy::Always => {
                        may_violate = true;
                    }
                    Policy::Sync | Policy::Esync => {
                        let lookup = move |seq: u64| {
                            (seq >= win_base as u64 && seq < k as u64)
                                .then(|| plan.task_start_pc[seq as usize])
                        };
                        let unit = shared.unit.as_mut().expect("sync policy has a unit");
                        let mut entries =
                            unit.predicted_entries_for_load(pc_a[j], k as u64, Some(&lookup));
                        entries.retain(|e| synced_edges.insert(e.edge));
                        if entries.is_empty() {
                            may_violate = true;
                        } else {
                            let mut edges = Vec::with_capacity(entries.len());
                            let mut wait_until = ready_mem;
                            let mut any_missing = false;
                            for e in &entries {
                                let producer_seq = (k as u64).checked_sub(e.dist as u64);
                                let signal = match config.tagging {
                                    TagScheme::DependenceDistance => producer_seq.and_then(|ps| {
                                        let ps = ps as usize;
                                        if ps < win_base || ps >= k {
                                            return None;
                                        }
                                        let rec = &window[ps - win_base];
                                        let s0 = plan.task_store_start[ps] as usize;
                                        let s1 = plan.task_store_start[ps + 1] as usize;
                                        let mut best: Option<u64> = None;
                                        for s in s0..s1 {
                                            if plan.pc[plan.store_rec[s] as usize]
                                                == e.edge.store_pc
                                            {
                                                let c = rec.store_complete[s - s0];
                                                best = Some(best.map_or(c, |b| b.max(c)));
                                            }
                                        }
                                        best
                                    }),
                                    TagScheme::DataAddress => producer
                                        .filter(|&(_, _, pc)| pc == e.edge.store_pc)
                                        .map(|(_, c, _)| c),
                                };
                                let is_producer = match config.tagging {
                                    TagScheme::DependenceDistance => {
                                        producer.is_some_and(|(pt, _, pc)| {
                                            pc == e.edge.store_pc && Some(pt as u64) == producer_seq
                                        })
                                    }
                                    TagScheme::DataAddress => signal.is_some(),
                                };
                                match signal {
                                    Some(t) => {
                                        let wake = t + config.signal_latency;
                                        edges.push((e.edge, true, is_producer));
                                        wait_until = wait_until.max(wake);
                                    }
                                    None => {
                                        any_missing = true;
                                        edges.push((e.edge, false, false));
                                    }
                                }
                            }
                            if any_missing {
                                wait_until = wait_until.max(window_addr_ready);
                                false_dep_releases += 1;
                            }
                            if wait_until > ready_before_sync {
                                synchronized_loads += 1;
                            }
                            event = Some(LoadEvent {
                                edges,
                                predicted: true,
                                actual_dependence: wait_until > ready_before_sync,
                            });
                            ready_mem = wait_until;
                            may_violate = true;
                        }
                    }
                }

                let start = mem_ports.claim(issue_ports.claim(ready_mem, 1), 1);
                let complete = shared.dcache.access(start, addr, false, shared.bus).done_at;

                if may_violate {
                    if let Some((pt, pcomplete, ppc)) = producer {
                        if pcomplete > start {
                            violations.push(Violation {
                                edge: DepEdge {
                                    load_pc: pc_a[j],
                                    store_pc: ppc,
                                },
                                producer_task: pt as u64,
                                producer_task_pc: plan.task_start_pc[pt],
                                detect: pcomplete,
                                predicted: event.as_ref().is_some_and(|e| e.predicted),
                            });
                            if let Some(ev) = &mut event {
                                ev.actual_dependence = true;
                            } else if config.policy.uses_predictor() {
                                event = Some(LoadEvent {
                                    edges: Vec::new(),
                                    predicted: false,
                                    actual_dependence: true,
                                });
                            }
                        }
                    }
                }
                if event.is_none() && config.policy.uses_predictor() {
                    event = Some(LoadEvent {
                        edges: Vec::new(),
                        predicted: false,
                        actual_dependence: false,
                    });
                }
                if let Some(e) = event {
                    load_events.push(e);
                }
                complete
            }
        } else {
            let latency = lat[op_a[j] as usize];
            let class_ports = match fu_a[j] {
                FU_COMPLEX => &mut *complex_ports,
                FU_FP => &mut *fp_ports,
                FU_BRANCH => &mut *branch_ports,
                _ => &mut *simple_ports,
            };
            let start = class_ports.claim(issue_ports.claim(ready, 1), 1);
            start + latency
        };

        if flags & F_CONTROL != 0 {
            last_branch_completion = last_branch_completion.max(complete);
        }
        let dst = dst_a[j];
        if dst != NO_REG {
            local_write[dst as usize] = complete;
            write_epoch[dst as usize] = epoch;
        }
        retire.push(complete);
        max_completion = max_completion.max(complete);
    }

    let violation = violations.iter().copied().min_by_key(|v| v.detect);
    PAttempt {
        max_completion,
        last_branch_completion,
        store_complete,
        max_store_addr_ready,
        violation,
        load_events,
        synchronized_loads,
        false_dep_releases,
    }
}

/// The planned engine's simulator state; mirrors the legacy `SimState`,
/// plus a pre-expanded opcode→latency table.
struct PSim {
    config: MsConfig,
    lat: Vec<u64>,
    dcache: BankedCache,
    bus: Bus,
    icaches: Vec<Cache>,
    unit: Option<SyncUnit>,
    predictor: PathPredictor,
    history: PathHistory,
    descriptor_cache: LruTable<Pc, ()>,
    window: VecDeque<PRecord>,
    scratch: PScratch,
    stage_free: Vec<u64>,
    prev_assign: u64,
    prev_commit: u64,
    prev_task_pc: Option<Pc>,
    prev_last_branch: u64,
    ddcs: Vec<(usize, Ddc)>,
    result: MsResult,
}

fn sync_unit_for(config: &MsConfig) -> Option<SyncUnit> {
    config.policy.uses_predictor().then(|| {
        SyncUnit::new(SyncUnitConfig {
            stages: config.stages,
            mdpt: config.mdpt,
            esync: config.policy == Policy::Esync,
            tagging: config.tagging,
        })
    })
}

impl PSim {
    fn new(config: MsConfig) -> PSim {
        let mut lat = vec![0u64; 256];
        for &op in Opcode::ALL {
            lat[op as usize] = config.latencies.of(op);
        }
        PSim {
            lat,
            dcache: BankedCache::new(config.dcache),
            bus: Bus::paper_default(),
            icaches: (0..config.stages)
                .map(|_| Cache::new(config.icache))
                .collect(),
            unit: sync_unit_for(&config),
            predictor: PathPredictor::new(4096, config.path_depth),
            history: PathHistory::new(config.path_depth),
            descriptor_cache: LruTable::new(config.descriptor_cache),
            window: VecDeque::with_capacity(config.stages),
            scratch: PScratch::default(),
            stage_free: vec![0; config.stages],
            prev_assign: 0,
            prev_commit: 0,
            prev_task_pc: None,
            prev_last_branch: 0,
            ddcs: config.ddc_sizes.iter().map(|&s| (s, Ddc::new(s))).collect(),
            result: MsResult::default(),
            config,
        }
    }

    /// Clones the policy-independent prefix state into a continuation for
    /// `config`. `loads_seen` is the number of loads committed in the
    /// prefix: predictor policies record one unpredicted/no-dependence
    /// breakdown entry per load, which the (predictor-free) prefix did not
    /// accumulate.
    fn fork(&self, config: &MsConfig, loads_seen: u64) -> PSim {
        let unit = sync_unit_for(config);
        let mut result = self.result.clone();
        if unit.is_some() {
            for _ in 0..loads_seen {
                result.breakdown.record(false, false);
            }
        }
        PSim {
            lat: self.lat.clone(),
            dcache: self.dcache.clone(),
            bus: self.bus.clone(),
            icaches: self.icaches.clone(),
            unit,
            predictor: self.predictor.clone(),
            history: self.history.clone(),
            descriptor_cache: self.descriptor_cache.clone(),
            window: self.window.clone(),
            scratch: PScratch::default(),
            stage_free: self.stage_free.clone(),
            prev_assign: self.prev_assign,
            prev_commit: self.prev_commit,
            prev_task_pc: self.prev_task_pc,
            prev_last_branch: self.prev_last_branch,
            ddcs: config.ddc_sizes.iter().map(|&s| (s, Ddc::new(s))).collect(),
            result,
            config: config.clone(),
        }
    }

    fn on_task(&mut self, plan: &ReplayPlan, k: usize) {
        let stage = k % self.config.stages;
        let start_pc = plan.task_start_pc[k];

        // --- Sequencer: next-task prediction and descriptor fetch -------
        let mut mispredicted = false;
        if let Some(prev_pc) = self.prev_task_pc {
            self.result.control_predictions += 1;
            let predicted = self.predictor.predict(prev_pc, self.history.hash());
            if predicted != Some(start_pc) {
                self.result.control_mispredicts += 1;
                mispredicted = true;
            }
            self.predictor
                .update(prev_pc, self.history.hash(), start_pc);
        }
        self.history.push(start_pc);
        let descriptor_hit = self.descriptor_cache.get(&start_pc).is_some();
        self.descriptor_cache.insert(start_pc, ());

        // --- Task start time ---------------------------------------------
        let mut t0 = self.stage_free[stage].max(self.prev_assign + 1);
        if mispredicted {
            t0 = t0.max(self.prev_last_branch + self.config.mispredict_penalty);
        }
        if !descriptor_hit {
            t0 += self.config.descriptor_miss_penalty;
        }

        // --- Execute, squashing and replaying on violations --------------
        let mut violated_edges: Vec<DepEdge> = Vec::new();
        let outcome = loop {
            let mut shared = Shared {
                config: &self.config,
                dcache: &mut self.dcache,
                bus: &mut self.bus,
                icache: &mut self.icaches[stage],
                unit: self.unit.as_mut(),
            };
            let outcome = planned_attempt(
                plan,
                k,
                t0,
                stage,
                &self.window,
                &mut shared,
                &mut self.scratch,
                &self.lat,
            );
            let Some(v) = outcome.violation else {
                break outcome;
            };
            self.scratch.put_store_vec(outcome.store_complete);
            self.scratch.put_event_vec(outcome.load_events);
            violated_edges.push(v.edge);
            self.result.misspeculations += 1;
            for (_, ddc) in &mut self.ddcs {
                ddc.observe(v.edge);
            }
            if let Some(unit) = &mut self.unit {
                let dist = (k as u64 - v.producer_task).max(1) as u32;
                unit.record_misspeculation(v.edge, dist, Some(v.producer_task_pc));
                self.result.breakdown.record(v.predicted, true);
            }
            t0 = v.detect + self.config.squash_penalty;
        };

        // --- Commit (in order) -------------------------------------------
        let commit = outcome.max_completion.max(self.prev_commit + 1);
        self.prev_commit = commit;
        self.stage_free[stage] = commit + 1;
        self.prev_assign = t0;
        self.prev_last_branch = outcome.last_branch_completion;
        self.prev_task_pc = Some(start_pc);

        // --- Non-speculative prediction updates at commit ----------------
        if let Some(unit) = &mut self.unit {
            for ev in &outcome.load_events {
                self.result
                    .breakdown
                    .record(ev.predicted, ev.actual_dependence);
                for &(edge, found, waited) in &ev.edges {
                    let had_dependence = (found && waited) || violated_edges.contains(&edge);
                    unit.train(edge, had_dependence);
                }
            }
        }
        self.scratch.put_event_vec(outcome.load_events);
        self.result.synchronized_loads += outcome.synchronized_loads;
        self.result.false_dep_releases += outcome.false_dep_releases;

        // --- Bookkeeping ---------------------------------------------------
        self.result.tasks += 1;
        self.result.instructions += plan.task_range(k).len() as u64;
        self.result.committed_loads += plan.task_loads(k) as u64;
        self.result.committed_stores += plan.task_stores(k) as u64;
        let mut last_write = [NO_TIME; REGS];
        for (di, slot) in last_write.iter_mut().enumerate() {
            if self.scratch.write_epoch[di] == self.scratch.reg_epoch {
                *slot = self.scratch.last_write[di];
            }
        }
        self.window.push_back(PRecord {
            last_write,
            store_complete: outcome.store_complete,
            max_store_addr_ready: outcome.max_store_addr_ready,
        });
        while self.window.len() >= self.config.stages.max(1) {
            if let Some(evicted) = self.window.pop_front() {
                self.scratch.put_store_vec(evicted.store_complete);
            }
        }
    }

    fn finish(mut self) -> MsResult {
        self.result.cycles = self.prev_commit;
        self.result.dcache = self.dcache.stats();
        let mut ic = mds_mem::CacheStats::default();
        for c in &self.icaches {
            ic.hits += c.stats().hits;
            ic.misses += c.stats().misses;
        }
        self.result.icache = ic;
        self.result.bus_transactions = self.bus.transactions();
        self.result.ddc = self
            .ddcs
            .into_iter()
            .map(|(s, d)| (s, d.hits(), d.misses()))
            .collect();
        self.result
    }
}

/// Replays `trace` under `config` on the planned engine.
///
/// Produces a result identical to
/// [`Multiscalar::run_trace`](crate::Multiscalar::run_trace) over the
/// same records (enforced by tests and the CI equivalence gate), at a
/// fraction of the cost: the trace's [`ReplayPlan`] is built once and
/// cached, and the replay itself is a flat scan over its arrays.
pub fn run_planned(trace: &Trace, config: &MsConfig) -> MsResult {
    let plan = trace.replay_plan().clone();
    let mut sim = PSim::new(config.clone());
    for k in 0..plan.tasks() {
        sim.on_task(&plan, k);
    }
    sim.finish()
}

/// `true` when two configurations model identical hardware up to the
/// speculation policy — the precondition for sharing a fork-replay
/// prefix. Policy, predictor configuration (MDPT, tagging), and DDC
/// measurement sizes may differ; everything that affects scheduling
/// before the first possible policy divergence must match.
pub fn forkable_twins(a: &MsConfig, b: &MsConfig) -> bool {
    // Exhaustive destructure: adding a field to `MsConfig` must force a
    // decision about whether it participates in twin-ness.
    let MsConfig {
        stages,
        policy: _,
        issue_width,
        fetch_width,
        window,
        simple_int_units,
        complex_int_units,
        fp_units,
        branch_units,
        mem_units,
        latencies,
        icache,
        dcache,
        ring_latency,
        squash_penalty,
        mispredict_penalty,
        descriptor_cache,
        descriptor_miss_penalty,
        path_depth,
        mdpt: _,
        tagging: _,
        signal_latency,
        ddc_sizes: _,
    } = a;
    *stages == b.stages
        && *issue_width == b.issue_width
        && *fetch_width == b.fetch_width
        && *window == b.window
        && *simple_int_units == b.simple_int_units
        && *complex_int_units == b.complex_int_units
        && *fp_units == b.fp_units
        && *branch_units == b.branch_units
        && *mem_units == b.mem_units
        && *latencies == b.latencies
        && *icache == b.icache
        && *dcache == b.dcache
        && *ring_latency == b.ring_latency
        && *squash_penalty == b.squash_penalty
        && *mispredict_penalty == b.mispredict_penalty
        && *descriptor_cache == b.descriptor_cache
        && *descriptor_miss_penalty == b.descriptor_miss_penalty
        && *path_depth == b.path_depth
        && *signal_latency == b.signal_latency
}

/// Replays `trace` under every configuration, sharing the
/// policy-independent prefix across [`forkable_twins`]; results are
/// returned in input order and are identical to running [`run_planned`]
/// per configuration (and to the legacy engine).
pub fn run_fused(trace: &Trace, configs: &[MsConfig]) -> Vec<MsResult> {
    let plan = trace.replay_plan().clone();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        match groups
            .iter_mut()
            .find(|g| forkable_twins(&configs[g[0]], c))
        {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    let mut results: Vec<Option<MsResult>> = configs.iter().map(|_| None).collect();
    for group in groups {
        if group.len() == 1 {
            let i = group[0];
            let mut sim = PSim::new(configs[i].clone());
            for k in 0..plan.tasks() {
                sim.on_task(&plan, k);
            }
            results[i] = Some(sim.finish());
            continue;
        }
        let fork_at = plan.fork_task(configs[group[0]].stages);
        // The prefix is policy-independent by construction; run it as
        // blind speculation with no predictor and no DDCs (none of which
        // can act before the fork).
        let mut prefix_config = configs[group[0]].clone();
        prefix_config.policy = Policy::Always;
        prefix_config.ddc_sizes = Vec::new();
        let mut prefix = PSim::new(prefix_config);
        for k in 0..fork_at {
            prefix.on_task(&plan, k);
        }
        let loads_seen = plan.task_load_start[fork_at] as u64;
        for &i in &group {
            let mut sim = prefix.fork(&configs[i], loads_seen);
            for k in fork_at..plan.tasks() {
                sim.on_task(&plan, k);
            }
            results[i] = Some(sim.finish());
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every config produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Multiscalar;
    use mds_harness::json::ToJson;
    use mds_isa::{Program, ProgramBuilder, Reg};

    fn capture(p: &Program) -> Trace {
        Trace::capture(p).unwrap()
    }

    fn legacy(trace: &Trace, config: &MsConfig) -> MsResult {
        Multiscalar::new(config.clone()).run_trace(trace.records().iter().copied())
    }

    fn assert_same(a: &MsResult, b: &MsResult, label: &str) {
        assert_eq!(
            a.to_json().to_string(),
            b.to_json().to_string(),
            "engines diverge: {label}"
        );
    }

    /// Cross-task recurrence through one cell (from the sim tests).
    fn recurrence_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("cell", 1);
        b.alloc("pad", 64);
        b.la(Reg::S0, "cell");
        b.la(Reg::S1, "pad");
        b.li(Reg::T0, iters);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.mul(Reg::T3, Reg::T1, Reg::T1);
        b.mul(Reg::T3, Reg::T3, Reg::T1);
        b.sd(Reg::T3, Reg::S1, 0);
        b.sd(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// Independent tasks with slow store addresses (from the sim tests).
    fn independent_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("arr", 8192);
        b.alloc("dst", 1024);
        b.la(Reg::S0, "arr");
        b.la(Reg::S1, "dst");
        b.li(Reg::T0, iters);
        b.li(Reg::T6, 1);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.mul(Reg::T2, Reg::T1, Reg::T1);
        b.addi(Reg::T2, Reg::T2, 3);
        b.div(Reg::T4, Reg::T0, Reg::T6);
        b.andi(Reg::T4, Reg::T4, 0xff8);
        b.add(Reg::T4, Reg::S1, Reg::T4);
        b.sd(Reg::T2, Reg::T4, 0);
        b.addi(Reg::S0, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// Distance-5 recurrence through a ring buffer (from the sim tests).
    fn distant_recurrence_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("ring", 5);
        b.la(Reg::S2, "ring");
        b.la(Reg::S3, "ring");
        b.li(Reg::T5, 0);
        b.li(Reg::T6, 5);
        b.li(Reg::T0, iters);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S2, 0);
        b.mul(Reg::T3, Reg::T1, Reg::T1);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sd(Reg::T1, Reg::S2, 0);
        b.addi(Reg::S2, Reg::S2, 8);
        b.addi(Reg::T5, Reg::T5, 1);
        b.bne(Reg::T5, Reg::T6, "noreset");
        b.mv(Reg::S2, Reg::S3);
        b.mv(Reg::T5, Reg::ZERO);
        b.label("noreset");
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// Byte/word store mix so the planned dependence arrays face partial
    /// overlaps.
    fn byte_store_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("buf", 4);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, iters);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sb(Reg::T1, Reg::S0, 3);
        b.lb(Reg::T2, Reg::S0, 3);
        b.sd(Reg::T1, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn planned_engine_matches_legacy_for_every_policy_and_stage_count() {
        let programs = [
            recurrence_tasks(60),
            independent_tasks(60),
            distant_recurrence_tasks(60),
            byte_store_tasks(40),
        ];
        for (pi, p) in programs.iter().enumerate() {
            let trace = capture(p);
            for stages in [1, 4, 8] {
                for policy in Policy::ALL {
                    let config = MsConfig::paper(stages, policy);
                    let a = legacy(&trace, &config);
                    let b = run_planned(&trace, &config);
                    assert_same(&a, &b, &format!("program {pi}, {stages} stages, {policy}"));
                }
            }
        }
    }

    #[test]
    fn planned_engine_matches_legacy_with_ddcs_and_address_tagging() {
        let trace = capture(&recurrence_tasks(80));
        let mut config = MsConfig::paper(4, Policy::Always).with_ddc_sizes(&[16, 64]);
        assert_same(
            &legacy(&trace, &config),
            &run_planned(&trace, &config),
            "ddc",
        );
        config = MsConfig::paper(8, Policy::Sync);
        config.tagging = TagScheme::DataAddress;
        assert_same(
            &legacy(&trace, &config),
            &run_planned(&trace, &config),
            "address tagging",
        );
    }

    #[test]
    fn fused_replay_matches_per_policy_scratch_runs() {
        for p in [
            recurrence_tasks(80),
            independent_tasks(80),
            byte_store_tasks(50),
        ] {
            let trace = capture(&p);
            for stages in [4, 8] {
                let configs: Vec<MsConfig> = Policy::ALL
                    .into_iter()
                    .map(|policy| MsConfig::paper(stages, policy))
                    .collect();
                let fused = run_fused(&trace, &configs);
                for (config, result) in configs.iter().zip(&fused) {
                    let expect = legacy(&trace, config);
                    assert_same(
                        &expect,
                        result,
                        &format!("{stages} stages, {}", config.policy),
                    );
                }
            }
        }
    }

    #[test]
    fn fused_replay_handles_non_twin_groups_and_heterogeneous_ddcs() {
        let trace = capture(&recurrence_tasks(60));
        let mut tagged = MsConfig::paper(4, Policy::Esync);
        tagged.tagging = TagScheme::DataAddress;
        let configs = vec![
            MsConfig::paper(4, Policy::Always).with_ddc_sizes(&[16]),
            MsConfig::paper(8, Policy::Always), // different stages: own group
            MsConfig::paper(4, Policy::Sync),
            tagged,
        ];
        let fused = run_fused(&trace, &configs);
        assert_eq!(fused.len(), configs.len());
        for (i, config) in configs.iter().enumerate() {
            assert_same(&legacy(&trace, config), &fused[i], &format!("config {i}"));
        }
    }

    #[test]
    fn twin_detection_ignores_policy_but_not_hardware() {
        let a = MsConfig::paper(4, Policy::Always);
        let b = MsConfig::paper(4, Policy::Esync).with_ddc_sizes(&[64]);
        assert!(forkable_twins(&a, &b));
        let c = MsConfig::paper(8, Policy::Always);
        assert!(!forkable_twins(&a, &c));
        let mut d = MsConfig::paper(4, Policy::Always);
        d.squash_penalty += 1;
        assert!(!forkable_twins(&a, &d));
    }

    #[test]
    fn empty_trace_replays_to_an_empty_result() {
        let trace = Trace::from_parts(Vec::new(), mds_emu::TraceSummary::default());
        let config = MsConfig::paper(4, Policy::Always);
        let r = run_planned(&trace, &config);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.tasks, 0);
        let fused = run_fused(&trace, &[config.clone(), MsConfig::paper(4, Policy::Never)]);
        assert_eq!(fused.len(), 2);
    }
}
