//! The Multiscalar simulator: sequencing, prediction, squash/replay, and
//! in-order commit over the task stream.

use crate::config::MsConfig;
use crate::exec::{execute_attempt, ExecScratch, Shared, TaskRecord};
use crate::result::MsResult;
use crate::task::{Task, TaskSplitter};
use mds_core::{Ddc, SyncUnit, SyncUnitConfig};
use mds_emu::{DynInst, EmuError, Emulator};
use mds_isa::{Pc, Program};
use mds_mem::{BankedCache, Bus, Cache};
use mds_predict::{LruTable, PathHistory, PathPredictor};
use std::collections::VecDeque;

/// A configured Multiscalar processor model.
///
/// `Multiscalar` is stateless between runs: [`Multiscalar::run`] executes
/// a program functionally (via `mds-emu`) and replays the committed
/// stream on a fresh timing state, so results are deterministic and runs
/// are independent.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Multiscalar {
    config: MsConfig,
}

impl Multiscalar {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MsConfig) -> Self {
        Multiscalar { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MsConfig {
        &self.config
    }

    /// Runs `program` to completion and returns the timing result.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors ([`EmuError`]) — wild PCs or
    /// the instruction budget.
    pub fn run(&self, program: &Program) -> Result<MsResult, EmuError> {
        self.run_limited(program, u64::MAX)
    }

    /// Like [`Multiscalar::run`] with an explicit instruction budget.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors ([`EmuError`]).
    pub fn run_limited(&self, program: &Program, limit: u64) -> Result<MsResult, EmuError> {
        let mut state = SimState::new(&self.config);
        let mut splitter = TaskSplitter::new(None);
        let mut emu = Emulator::new(program);
        if limit != u64::MAX {
            emu = emu.with_limit(limit);
        }
        let run = emu.run_with(|d| {
            if let Some(task) = splitter.push(*d) {
                state.on_task(task);
            }
        });
        match run {
            Ok(_) => {}
            // A budget-limited run is still a valid (truncated) sample.
            Err(EmuError::InstructionLimit { .. }) if limit != u64::MAX => {}
            Err(e) => return Err(e),
        }
        if let Some(task) = splitter.finish() {
            state.on_task(task);
        }
        Ok(state.finish())
    }

    /// Runs over an already-captured committed trace (for tests and for
    /// replaying identical streams across configurations).
    pub fn run_trace<I>(&self, trace: I) -> MsResult
    where
        I: IntoIterator<Item = DynInst>,
    {
        let mut state = SimState::new(&self.config);
        let mut splitter = TaskSplitter::new(None);
        for d in trace {
            if let Some(task) = splitter.push(d) {
                state.on_task(task);
            }
        }
        if let Some(task) = splitter.finish() {
            state.on_task(task);
        }
        state.finish()
    }
}

struct SimState<'c> {
    config: &'c MsConfig,
    dcache: BankedCache,
    bus: Bus,
    icaches: Vec<Cache>,
    unit: Option<SyncUnit>,
    predictor: PathPredictor,
    history: PathHistory,
    descriptor_cache: LruTable<Pc, ()>,
    window: VecDeque<TaskRecord>,
    scratch: ExecScratch,
    stage_free: Vec<u64>,
    prev_assign: u64,
    prev_commit: u64,
    prev_task_pc: Option<Pc>,
    prev_last_branch: u64,
    ddcs: Vec<(usize, Ddc)>,
    result: MsResult,
}

impl<'c> SimState<'c> {
    fn new(config: &'c MsConfig) -> Self {
        let unit = config.policy.uses_predictor().then(|| {
            SyncUnit::new(SyncUnitConfig {
                stages: config.stages,
                mdpt: config.mdpt,
                esync: config.policy == mds_core::Policy::Esync,
                tagging: config.tagging,
            })
        });
        SimState {
            config,
            dcache: BankedCache::new(config.dcache),
            bus: Bus::paper_default(),
            icaches: (0..config.stages)
                .map(|_| Cache::new(config.icache))
                .collect(),
            unit,
            predictor: PathPredictor::new(4096, config.path_depth),
            history: PathHistory::new(config.path_depth),
            descriptor_cache: LruTable::new(config.descriptor_cache),
            window: VecDeque::with_capacity(config.stages),
            scratch: ExecScratch::new(),
            stage_free: vec![0; config.stages],
            prev_assign: 0,
            prev_commit: 0,
            prev_task_pc: None,
            prev_last_branch: 0,
            ddcs: config.ddc_sizes.iter().map(|&s| (s, Ddc::new(s))).collect(),
            result: MsResult::default(),
        }
    }

    fn on_task(&mut self, task: Task) {
        let stage = (task.seq as usize) % self.config.stages;

        // --- Sequencer: next-task prediction and descriptor fetch -------
        let mut mispredicted = false;
        if let Some(prev_pc) = self.prev_task_pc {
            self.result.control_predictions += 1;
            let predicted = self.predictor.predict(prev_pc, self.history.hash());
            if predicted != Some(task.start_pc) {
                self.result.control_mispredicts += 1;
                mispredicted = true;
            }
            self.predictor
                .update(prev_pc, self.history.hash(), task.start_pc);
        }
        self.history.push(task.start_pc);
        let descriptor_hit = self.descriptor_cache.get(&task.start_pc).is_some();
        self.descriptor_cache.insert(task.start_pc, ());

        // --- Task start time ---------------------------------------------
        let mut t0 = self.stage_free[stage].max(self.prev_assign + 1);
        if mispredicted {
            // The wrong task was fetched; the right one starts only after
            // the previous task's last branch resolves, plus the penalty.
            t0 = t0.max(self.prev_last_branch + self.config.mispredict_penalty);
        }
        if !descriptor_hit {
            t0 += self.config.descriptor_miss_penalty;
        }

        // --- Execute, squashing and replaying on violations --------------
        let mut violated_edges: Vec<mds_core::DepEdge> = Vec::new();
        let outcome = loop {
            let mut shared = Shared {
                config: self.config,
                dcache: &mut self.dcache,
                bus: &mut self.bus,
                icache: &mut self.icaches[stage],
                unit: self.unit.as_mut(),
            };
            let outcome = execute_attempt(
                &task,
                t0,
                stage,
                &self.window,
                &mut shared,
                &mut self.scratch,
            );
            let Some(v) = outcome.violation else {
                break outcome;
            };
            // The squashed attempt's record is discarded — reclaim its maps
            // so the replay reuses the allocations.
            self.scratch.recycle(outcome.record);
            violated_edges.push(v.edge);
            self.result.misspeculations += 1;
            for (_, ddc) in &mut self.ddcs {
                ddc.observe(v.edge);
            }
            if let Some(unit) = &mut self.unit {
                let dist = (task.seq - v.producer_task).max(1) as u32;
                unit.record_misspeculation(v.edge, dist, Some(v.producer_task_pc));
                // The squashed load's prediction is counted once, as the
                // paper does for loads issued from squashed tasks.
                self.result.breakdown.record(v.predicted, true);
            }
            t0 = v.detect + self.config.squash_penalty;
        };

        // --- Commit (in order) -------------------------------------------
        let mut record = outcome.record;
        let commit = record.max_completion.max(self.prev_commit + 1);
        record.commit = commit;
        self.prev_commit = commit;
        self.stage_free[stage] = commit + 1;
        self.prev_assign = t0;
        self.prev_last_branch = record.last_branch_completion;
        self.prev_task_pc = Some(task.start_pc);

        // --- Non-speculative prediction updates at commit ----------------
        if let Some(unit) = &mut self.unit {
            for ev in &outcome.load_events {
                self.result
                    .breakdown
                    .record(ev.predicted, ev.actual_dependence);
                for &(edge, found, waited) in &ev.edges {
                    // An edge that violated during any attempt of this task
                    // definitely carried a dependence — the committed
                    // (post-replay) attempt just re-issued the load after
                    // the store and saw no wait, which must not weaken the
                    // prediction.
                    let had_dependence = (found && waited) || violated_edges.contains(&edge);
                    unit.train(edge, had_dependence);
                }
            }
        }
        self.result.synchronized_loads += outcome.synchronized_loads;
        self.result.false_dep_releases += outcome.false_dep_releases;

        // --- Bookkeeping ---------------------------------------------------
        self.result.tasks += 1;
        self.result.instructions += task.len() as u64;
        for d in &task.insts {
            if d.is_load() {
                self.result.committed_loads += 1;
            } else if d.is_store() {
                self.result.committed_stores += 1;
            }
        }
        self.window.push_back(record);
        while self.window.len() >= self.config.stages.max(1) {
            if let Some(evicted) = self.window.pop_front() {
                self.scratch.recycle(evicted);
            }
        }
    }

    fn finish(mut self) -> MsResult {
        self.result.cycles = self.prev_commit;
        self.result.dcache = self.dcache.stats();
        let mut ic = mds_mem::CacheStats::default();
        for c in &self.icaches {
            ic.hits += c.stats().hits;
            ic.misses += c.stats().misses;
        }
        self.result.icache = ic;
        self.result.bus_transactions = self.bus.transactions();
        self.result.ddc = self
            .ddcs
            .into_iter()
            .map(|(s, d)| (s, d.hits(), d.misses()))
            .collect();
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_core::Policy;
    use mds_isa::{ProgramBuilder, Reg};

    /// Iterations-as-tasks loop whose loads never conflict with its
    /// stores, but whose store addresses resolve slowly (through a
    /// divide). Blind speculation sails through; refusing to speculate
    /// (NEVER) stalls every load behind older tasks' unresolved stores.
    fn independent_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("arr", 8192);
        b.alloc("dst", 1024);
        b.la(Reg::S0, "arr");
        b.la(Reg::S1, "dst");
        b.li(Reg::T0, iters);
        b.li(Reg::T6, 1);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.mul(Reg::T2, Reg::T1, Reg::T1);
        b.addi(Reg::T2, Reg::T2, 3);
        b.div(Reg::T4, Reg::T0, Reg::T6); // 12-cycle store-address compute
        b.andi(Reg::T4, Reg::T4, 0xff8);
        b.add(Reg::T4, Reg::S1, Reg::T4);
        b.sd(Reg::T2, Reg::T4, 0);
        b.addi(Reg::S0, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// A recurrence at task distance 5 through a 5-cell ring buffer: task
    /// k loads what task k-5 stored. A 4-stage window (3 older tasks)
    /// never sees the producer; an 8-stage window (7 older tasks) does —
    /// the table 6 "bigger window, more mis-speculation" effect.
    fn distant_recurrence_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("ring", 5);
        b.la(Reg::S2, "ring");
        b.la(Reg::S3, "ring");
        b.li(Reg::T5, 0); // ring index
        b.li(Reg::T6, 5);
        b.li(Reg::T0, iters);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S2, 0); // written by task k-5
        b.mul(Reg::T3, Reg::T1, Reg::T1);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sd(Reg::T1, Reg::S2, 0);
        b.addi(Reg::S2, Reg::S2, 8);
        b.addi(Reg::T5, Reg::T5, 1);
        b.bne(Reg::T5, Reg::T6, "noreset");
        b.mv(Reg::S2, Reg::S3);
        b.mv(Reg::T5, Reg::ZERO);
        b.label("noreset");
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// Iterations-as-tasks loop with a cross-task recurrence through one
    /// memory cell (every iteration loads what the previous one stored).
    fn recurrence_tasks(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("cell", 1);
        b.alloc("pad", 64);
        b.la(Reg::S0, "cell");
        b.la(Reg::S1, "pad");
        b.li(Reg::T0, iters);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0); // depends on previous task's store
        b.addi(Reg::T1, Reg::T1, 1);
        // Filler work so tasks overlap and the store lands late.
        b.mul(Reg::T3, Reg::T1, Reg::T1);
        b.mul(Reg::T3, Reg::T3, Reg::T1);
        b.sd(Reg::T3, Reg::S1, 0);
        b.sd(Reg::T1, Reg::S0, 0); // the recurrence store
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    fn run(p: &Program, stages: usize, policy: Policy) -> MsResult {
        Multiscalar::new(MsConfig::paper(stages, policy))
            .run(p)
            .unwrap()
    }

    #[test]
    fn committed_instructions_match_trace_for_every_policy() {
        let p = recurrence_tasks(50);
        let expected = {
            let mut e = Emulator::new(&p);
            e.run_with(|_| {}).unwrap().instructions
        };
        for policy in Policy::ALL {
            let r = run(&p, 4, policy);
            assert_eq!(r.instructions, expected, "{policy}");
        }
    }

    #[test]
    fn parallel_tasks_give_superscalar_ipc() {
        let p = independent_tasks(400);
        let r = run(&p, 4, Policy::Always);
        assert!(r.ipc() > 1.2, "ipc = {}", r.ipc());
        assert_eq!(r.misspeculations, 0);
    }

    #[test]
    fn always_beats_never_on_independent_tasks() {
        let p = independent_tasks(400);
        let never = run(&p, 4, Policy::Never);
        let always = run(&p, 4, Policy::Always);
        assert!(
            always.cycles < never.cycles,
            "ALWAYS {} vs NEVER {}",
            always.cycles,
            never.cycles
        );
    }

    #[test]
    fn blind_speculation_misspeculates_on_recurrences() {
        let p = recurrence_tasks(300);
        let r = run(&p, 4, Policy::Always);
        assert!(r.misspeculations > 50, "got {}", r.misspeculations);
    }

    #[test]
    fn psync_eliminates_misspeculation_and_beats_blind() {
        let p = recurrence_tasks(300);
        let always = run(&p, 4, Policy::Always);
        let psync = run(&p, 4, Policy::PSync);
        assert_eq!(psync.misspeculations, 0);
        assert!(
            psync.cycles <= always.cycles,
            "PSYNC {} vs ALWAYS {}",
            psync.cycles,
            always.cycles
        );
    }

    #[test]
    fn sync_cuts_misspeculations_by_an_order_of_magnitude() {
        let p = recurrence_tasks(500);
        let always = run(&p, 4, Policy::Always);
        let sync = run(&p, 4, Policy::Sync);
        assert!(
            sync.misspeculations * 10 <= always.misspeculations,
            "SYNC {} vs ALWAYS {}",
            sync.misspeculations,
            always.misspeculations
        );
        assert!(sync.synchronized_loads > 0);
    }

    #[test]
    fn esync_matches_or_beats_sync_here() {
        let p = recurrence_tasks(500);
        let sync = run(&p, 4, Policy::Sync);
        let esync = run(&p, 4, Policy::Esync);
        assert!(
            esync.misspeculations <= sync.misspeculations + 5,
            "ESYNC {} vs SYNC {}",
            esync.misspeculations,
            sync.misspeculations
        );
    }

    #[test]
    fn more_stages_mean_more_misspeculations_under_blind() {
        // Table 6's shape: a larger window exposes more violations. The
        // recurrence sits at task distance 5 — invisible to a 4-stage
        // window, violated constantly in an 8-stage one.
        let p = distant_recurrence_tasks(400);
        let four = run(&p, 4, Policy::Always);
        let eight = run(&p, 8, Policy::Always);
        assert!(
            eight.misspeculations > four.misspeculations + 50,
            "8-stage {} vs 4-stage {}",
            eight.misspeculations,
            four.misspeculations
        );
    }

    #[test]
    fn determinism() {
        let p = recurrence_tasks(100);
        let a = run(&p, 4, Policy::Esync);
        let b = run(&p, 4, Policy::Esync);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.misspeculations, b.misspeculations);
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn ddc_measurement_reports_rates() {
        let p = recurrence_tasks(300);
        let cfg = MsConfig::paper(4, Policy::Always).with_ddc_sizes(&[16, 64]);
        let r = Multiscalar::new(cfg).run(&p).unwrap();
        let small = r.ddc_miss_rate(16).unwrap();
        let large = r.ddc_miss_rate(64).unwrap();
        assert!(large.value() <= small.value() + 1e-9);
        // One hot edge: nearly everything hits.
        assert!(large.value() < 50.0);
    }

    #[test]
    fn control_predictor_learns_the_loop() {
        let p = independent_tasks(400);
        let r = run(&p, 4, Policy::Always);
        assert!(
            r.control_accuracy().value() > 90.0,
            "accuracy {}",
            r.control_accuracy()
        );
    }

    #[test]
    fn run_trace_equals_run() {
        let p = recurrence_tasks(80);
        let trace: Vec<_> = Emulator::new(&p).run().unwrap();
        let sim = Multiscalar::new(MsConfig::paper(4, Policy::Sync));
        let a = sim.run(&p).unwrap();
        let b = sim.run_trace(trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.misspeculations, b.misspeculations);
    }

    #[test]
    fn single_stage_degenerates_to_serial_execution() {
        let p = recurrence_tasks(50);
        let r = run(&p, 1, Policy::Always);
        assert_eq!(r.misspeculations, 0); // no cross-task window at all
        assert!(r.ipc() <= 2.0 + 1e-9);
    }

    #[test]
    fn breakdown_populated_only_for_predictor_policies() {
        let p = recurrence_tasks(100);
        assert_eq!(run(&p, 4, Policy::Always).breakdown.total(), 0);
        let sync = run(&p, 4, Policy::Sync);
        assert!(sync.breakdown.total() > 0);
    }

    #[test]
    fn address_tagging_synchronizes_variable_distance_edges() {
        // A recurrence whose distance alternates between 1 and 2: the
        // distance-tagged scheme keeps guessing the wrong producer task,
        // while address tagging identifies it exactly.
        let mut b = ProgramBuilder::new();
        b.alloc("cell", 1);
        b.alloc("other", 1);
        b.la(Reg::S0, "cell");
        b.la(Reg::S1, "other");
        b.li(Reg::T6, 3);
        b.li(Reg::A3, 0);
        b.li(Reg::T0, 400);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.mul(Reg::T2, Reg::T1, Reg::T1);
        b.addi(Reg::T1, Reg::T1, 1);
        // Two of every three tasks write the cell; one writes elsewhere,
        // so the consumer's true distance alternates 1, 1, 2, 1, 1, 2…
        b.addi(Reg::A3, Reg::A3, 1);
        b.bne(Reg::A3, Reg::T6, "write_cell");
        b.mv(Reg::A3, Reg::ZERO);
        b.sd(Reg::T1, Reg::S1, 0);
        b.j("next");
        b.label("write_cell");
        b.sd(Reg::T1, Reg::S0, 0);
        b.label("next");
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();

        let mut dist_cfg = MsConfig::paper(8, Policy::Sync);
        dist_cfg.tagging = mds_core::TagScheme::DependenceDistance;
        let dist = Multiscalar::new(dist_cfg).run(&p).unwrap();
        let mut addr_cfg = MsConfig::paper(8, Policy::Sync);
        addr_cfg.tagging = mds_core::TagScheme::DataAddress;
        let addr = Multiscalar::new(addr_cfg).run(&p).unwrap();
        assert!(
            addr.misspeculations <= dist.misspeculations,
            "address {} vs distance {}",
            addr.misspeculations,
            dist.misspeculations
        );
        assert!(addr.misspeculations < 20, "got {}", addr.misspeculations);
    }

    #[test]
    fn run_limited_truncates_gracefully() {
        let p = independent_tasks(1000);
        let sim = Multiscalar::new(MsConfig::paper(4, Policy::Always));
        let r = sim.run_limited(&p, 500).unwrap();
        assert!(r.instructions <= 500);
        assert!(r.instructions > 0);
    }
}
