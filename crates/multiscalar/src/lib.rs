//! A cycle-level, trace-driven Multiscalar processor timing model.
//!
//! The paper evaluates its dependence prediction/synchronization mechanism
//! on a Multiscalar processor [Franklin '93; Sohi, Breach & Vijaykumar
//! '95]: the control-flow graph is partitioned into *tasks*; a global
//! sequencer predicts and assigns tasks to a ring of processing units;
//! units execute their tasks in parallel (2-way out-of-order issue each);
//! register values flow between adjacent units on a unidirectional ring;
//! memory accesses go through interleaved data banks; and cross-task
//! memory dependence violations are detected ARB-style and repaired by
//! squashing the offending task and everything younger.
//!
//! This crate reproduces that organization faithfully enough to compare
//! the paper's speculation policies:
//!
//! - tasks come from `.task` annotations in the program (the Multiscalar
//!   compiler's task boundaries), split out of the committed instruction
//!   stream produced by `mds-emu`;
//! - the sequencer uses a path-based next-task predictor with a
//!   task-descriptor cache and charges a penalty on task mispredictions;
//! - each unit models fetch through a private I-cache, a bounded
//!   instruction window, 2-wide issue over the paper's functional-unit mix
//!   (2 simple integer, 1 complex integer, 1 FP, 1 branch, 1 memory), and
//!   the functional-unit latencies of table 2;
//! - loads and stores access banked data caches behind a shared
//!   split-transaction bus (`mds-mem`), with bank conflicts and bus
//!   contention;
//! - **intra-task** memory dependences are never speculated (loads wait
//!   for prior same-task store addresses and forward from matching
//!   stores), while **inter-task** dependences are governed by the
//!   selected [`mds_core::Policy`] — NEVER, ALWAYS (blind), WAIT
//!   (selective), PSYNC (oracle), or the MDPT/MDST mechanism with the
//!   SYNC/ESYNC predictors;
//! - violations squash and replay the task (and delay everything younger),
//!   charging the re-execution cost cycle by cycle.
//!
//! # Methodology note
//!
//! The model is *trace driven*: every policy replays the same committed
//! instruction stream, and squashes are modeled by re-executing a task's
//! timing from scratch at the violation point. Wrong-path execution is
//! approximated by the misprediction/squash penalties. This is the
//! standard methodology for dependence-speculation studies, and it is
//! what makes cross-policy comparisons apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use mds_isa::{ProgramBuilder, Reg};
//! use mds_core::Policy;
//! use mds_multiscalar::{MsConfig, Multiscalar};
//!
//! // Each iteration is a task; iterations are fully independent.
//! let mut b = ProgramBuilder::new();
//! b.alloc("arr", 256);
//! b.la(Reg::S0, "arr");
//! b.li(Reg::T0, 64);
//! b.label("loop");
//! b.task();
//! b.ld(Reg::T1, Reg::S0, 0);
//! b.addi(Reg::T1, Reg::T1, 1);
//! b.sd(Reg::T1, Reg::S0, 0);
//! b.addi(Reg::S0, Reg::S0, 8);
//! b.addi(Reg::T0, Reg::T0, -1);
//! b.bne(Reg::T0, Reg::ZERO, "loop");
//! b.halt();
//! let program = b.build()?;
//!
//! let sim = Multiscalar::new(MsConfig { stages: 4, policy: Policy::Always, ..Default::default() });
//! let result = sim.run(&program)?;
//! assert!(result.ipc() > 1.0); // parallel tasks beat a scalar pipeline
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod exec;
pub mod replay;
pub mod result;
pub mod sim;
pub mod task;

pub use config::{FuLatencies, MsConfig};
pub use replay::{forkable_twins, run_fused, run_planned};
pub use result::MsResult;
pub use sim::Multiscalar;
pub use task::{Task, TaskSplitter};
