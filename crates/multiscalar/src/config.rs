//! Multiscalar processor configuration (the paper's §5.2).

use mds_core::{MdptConfig, Policy, TagScheme};
use mds_isa::Opcode;
use mds_mem::{BankedCacheConfig, CacheConfig};

/// Functional-unit latencies in cycles — the paper's table 2 (the exact
/// table is OCR-garbled in the source; these are the values legible there
/// plus the standard Multiscalar-literature latencies, documented in
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatencies {
    /// Simple integer ALU (add, logic, shifts, compares).
    pub simple_int: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// FP add/subtract.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
    /// FP compares, moves, negation, conversions.
    pub fp_misc: u64,
    /// Branch resolution.
    pub branch: u64,
}

impl Default for FuLatencies {
    fn default() -> Self {
        FuLatencies {
            simple_int: 1,
            int_mul: 4,
            int_div: 12,
            fp_add: 2,
            fp_mul: 4,
            fp_div: 12,
            fp_sqrt: 18,
            fp_misc: 2,
            branch: 1,
        }
    }
}

impl FuLatencies {
    /// The execution latency of one opcode (memory ops return 0 — their
    /// latency comes from the cache model).
    pub fn of(&self, op: Opcode) -> u64 {
        use Opcode::*;
        match op {
            Mul => self.int_mul,
            Div | Rem => self.int_div,
            FAdd | FSub => self.fp_add,
            FMul => self.fp_mul,
            FDiv => self.fp_div,
            FSqrt => self.fp_sqrt,
            FMov | FNeg | Feq | Flt | Fle | FCvtDl | FCvtLd => self.fp_misc,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | J | Jal | Jr | Halt => self.branch,
            Ld | Lb | Sd | Sb | Fld | Fsd => 0,
            _ => self.simple_int,
        }
    }

    /// Rows for the table 2 reproduction: `(unit, operation, latency)`.
    pub fn table_rows(&self) -> Vec<(&'static str, &'static str, u64)> {
        vec![
            ("simple integer", "add/logic/shift/compare", self.simple_int),
            ("complex integer", "multiply", self.int_mul),
            ("complex integer", "divide/remainder", self.int_div),
            ("floating point", "add/subtract", self.fp_add),
            ("floating point", "multiply", self.fp_mul),
            ("floating point", "divide", self.fp_div),
            ("floating point", "square root", self.fp_sqrt),
            ("floating point", "compare/move/convert", self.fp_misc),
            ("branch", "resolve", self.branch),
        ]
    }
}

/// Full configuration of a [`crate::Multiscalar`] simulator.
#[derive(Debug, Clone)]
pub struct MsConfig {
    /// Number of processing units (the paper simulates 4 and 8).
    pub stages: usize,
    /// The memory dependence speculation policy.
    pub policy: Policy,
    /// Instructions issued per cycle per unit (paper: 2-way OOO issue).
    pub issue_width: u32,
    /// Instructions fetched per cycle per unit (paper: an I-cache access
    /// returns 4 words in 1 cycle).
    pub fetch_width: u32,
    /// Per-unit instruction window entries.
    pub window: usize,
    /// Functional-unit counts per unit, in the paper's mix.
    pub simple_int_units: u32,
    /// Complex-integer units per stage.
    pub complex_int_units: u32,
    /// FP units per stage.
    pub fp_units: u32,
    /// Branch units per stage.
    pub branch_units: u32,
    /// Memory (address) units per stage.
    pub mem_units: u32,
    /// Functional-unit latencies.
    pub latencies: FuLatencies,
    /// Per-unit instruction cache (paper: 32 KiB, 2-way, 64-byte blocks).
    pub icache: CacheConfig,
    /// Shared banked data cache (paper: 2×units banks of 8 KiB direct
    /// mapped, 2-cycle hits).
    pub dcache: BankedCacheConfig,
    /// Ring hop latency between adjacent units (paper: 1 cycle).
    pub ring_latency: u64,
    /// Cycles from violation detection until the squashed task restarts.
    pub squash_penalty: u64,
    /// Extra cycles before a mispredicted task can start (after the
    /// previous task's last branch resolves).
    pub mispredict_penalty: u64,
    /// Task-descriptor cache entries (paper: 1024, 2-way); a miss delays
    /// task startup by `descriptor_miss_penalty`.
    pub descriptor_cache: usize,
    /// Cycles added on a descriptor-cache miss.
    pub descriptor_miss_penalty: u64,
    /// Path-history depth for the sequencer's control predictor.
    pub path_depth: usize,
    /// MDPT configuration for the SYNC/ESYNC policies (paper: 64 entries,
    /// 3-bit counters, threshold 3).
    pub mdpt: MdptConfig,
    /// How dynamic dependence instances are tagged (§3): the paper's
    /// dependence-distance scheme, or the data-address alternative.
    pub tagging: TagScheme,
    /// Cycles for an MDST signal to reach a waiting load.
    pub signal_latency: u64,
    /// Optional DDC sizes to measure on the mis-speculation stream
    /// (tables 7); empty to skip.
    pub ddc_sizes: Vec<usize>,
}

impl Default for MsConfig {
    fn default() -> Self {
        let stages = 4;
        MsConfig {
            stages,
            policy: Policy::Always,
            issue_width: 2,
            fetch_width: 4,
            window: 32,
            simple_int_units: 2,
            complex_int_units: 1,
            fp_units: 1,
            branch_units: 1,
            mem_units: 1,
            latencies: FuLatencies::default(),
            icache: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 2,
                block_bytes: 64,
            },
            dcache: BankedCacheConfig::paper_default(stages),
            ring_latency: 1,
            squash_penalty: 5,
            mispredict_penalty: 3,
            descriptor_cache: 1024,
            descriptor_miss_penalty: 2,
            path_depth: 4,
            mdpt: MdptConfig::default(),
            tagging: TagScheme::default(),
            signal_latency: 1,
            ddc_sizes: Vec::new(),
        }
    }
}

impl MsConfig {
    /// A paper-faithful configuration with the given unit count and
    /// policy, scaling the data banks with the units as in §5.2.
    pub fn paper(stages: usize, policy: Policy) -> Self {
        MsConfig {
            stages,
            policy,
            dcache: BankedCacheConfig::paper_default(stages),
            ..Default::default()
        }
    }

    /// Enables DDC measurement at the given sizes.
    pub fn with_ddc_sizes(mut self, sizes: &[usize]) -> Self {
        self.ddc_sizes = sizes.to_vec();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_table_covers_all_opcodes() {
        let l = FuLatencies::default();
        for &op in Opcode::ALL {
            let lat = l.of(op);
            if op.is_mem() {
                assert_eq!(lat, 0, "{op}: memory latency comes from the cache model");
            } else {
                assert!(lat >= 1, "{op} must take at least a cycle");
            }
        }
    }

    #[test]
    fn specific_latencies_match_table2() {
        let l = FuLatencies::default();
        assert_eq!(l.of(Opcode::Add), 1);
        assert_eq!(l.of(Opcode::Mul), 4);
        assert_eq!(l.of(Opcode::Div), 12);
        assert_eq!(l.of(Opcode::FAdd), 2);
        assert_eq!(l.of(Opcode::FMul), 4);
        assert_eq!(l.of(Opcode::FDiv), 12);
        assert_eq!(l.of(Opcode::FSqrt), 18);
        assert_eq!(l.of(Opcode::Beq), 1);
    }

    #[test]
    fn table_rows_render() {
        assert_eq!(FuLatencies::default().table_rows().len(), 9);
    }

    #[test]
    fn paper_config_scales_banks() {
        let c4 = MsConfig::paper(4, Policy::Always);
        let c8 = MsConfig::paper(8, Policy::Always);
        assert_eq!(c4.dcache.banks, 8);
        assert_eq!(c8.dcache.banks, 16);
        assert_eq!(c4.issue_width, 2);
    }

    #[test]
    fn with_ddc_sizes_sets_sizes() {
        let c = MsConfig::default().with_ddc_sizes(&[16, 64]);
        assert_eq!(c.ddc_sizes, vec![16, 64]);
    }
}
