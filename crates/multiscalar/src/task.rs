//! Task extraction from the committed instruction stream.

use mds_emu::DynInst;
use mds_isa::Pc;

/// One dynamic Multiscalar task: a contiguous chunk of the committed
/// instruction stream beginning at a task-head annotation.
#[derive(Debug, Clone)]
pub struct Task {
    /// Global dynamic task sequence number (0-based).
    pub seq: u64,
    /// The task's start PC (its identity for control prediction and for
    /// the ESYNC store-task-PC refinement).
    pub start_pc: Pc,
    /// The committed instructions of the task, in program order.
    pub insts: Vec<DynInst>,
}

impl Task {
    /// Number of dynamic instructions in the task.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// A task always has at least its head instruction.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Splits a committed [`DynInst`] stream into [`Task`]s at `new_task`
/// markers, optionally force-splitting oversized tasks.
///
/// # Examples
///
/// ```
/// use mds_multiscalar::TaskSplitter;
/// use mds_emu::DynInst;
/// use mds_isa::Instruction;
///
/// let mut splitter = TaskSplitter::new(None);
/// let make = |seq, new_task| DynInst {
///     seq, pc: seq as u32, inst: Instruction::NOP,
///     mem: None, branch: None, new_task,
/// };
/// assert!(splitter.push(make(0, true)).is_none());
/// assert!(splitter.push(make(1, false)).is_none());
/// let first = splitter.push(make(2, true)).unwrap();
/// assert_eq!(first.len(), 2);
/// let last = splitter.finish().unwrap();
/// assert_eq!(last.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TaskSplitter {
    current: Vec<DynInst>,
    start_pc: Pc,
    next_seq: u64,
    max_task_size: Option<usize>,
}

impl TaskSplitter {
    /// Creates a splitter. `max_task_size` force-splits larger tasks (to
    /// bound simulator memory on unannotated programs); `None` is
    /// faithful to the annotations.
    pub fn new(max_task_size: Option<usize>) -> Self {
        TaskSplitter {
            current: Vec::new(),
            start_pc: 0,
            next_seq: 0,
            max_task_size,
        }
    }

    /// Feeds one committed instruction; returns the *previous* task when
    /// this instruction starts a new one.
    pub fn push(&mut self, d: DynInst) -> Option<Task> {
        let force_split = self
            .max_task_size
            .is_some_and(|max| self.current.len() >= max);
        let completed = if (d.new_task || force_split) && !self.current.is_empty() {
            let task = Task {
                seq: self.next_seq,
                start_pc: self.start_pc,
                insts: std::mem::take(&mut self.current),
            };
            self.next_seq += 1;
            Some(task)
        } else {
            None
        };
        if self.current.is_empty() {
            self.start_pc = d.pc;
        }
        self.current.push(d);
        completed
    }

    /// Flushes the final task at end of stream.
    pub fn finish(&mut self) -> Option<Task> {
        if self.current.is_empty() {
            return None;
        }
        let task = Task {
            seq: self.next_seq,
            start_pc: self.start_pc,
            insts: std::mem::take(&mut self.current),
        };
        self.next_seq += 1;
        Some(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_isa::Instruction;

    fn di(seq: u64, pc: Pc, new_task: bool) -> DynInst {
        DynInst {
            seq,
            pc,
            inst: Instruction::NOP,
            mem: None,
            branch: None,
            new_task,
        }
    }

    #[test]
    fn splits_on_markers() {
        let mut s = TaskSplitter::new(None);
        assert!(s.push(di(0, 10, true)).is_none());
        assert!(s.push(di(1, 11, false)).is_none());
        assert!(s.push(di(2, 12, false)).is_none());
        let t0 = s.push(di(3, 10, true)).unwrap();
        assert_eq!(t0.seq, 0);
        assert_eq!(t0.start_pc, 10);
        assert_eq!(t0.len(), 3);
        let t1 = s.finish().unwrap();
        assert_eq!(t1.seq, 1);
        assert_eq!(t1.len(), 1);
        assert!(s.finish().is_none());
    }

    #[test]
    fn force_split_bounds_task_size() {
        let mut s = TaskSplitter::new(Some(2));
        assert!(s.push(di(0, 5, true)).is_none());
        assert!(s.push(di(1, 6, false)).is_none());
        let t = s.push(di(2, 7, false)).unwrap(); // forced
        assert_eq!(t.len(), 2);
        let t = s.finish().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.start_pc, 7);
    }

    #[test]
    fn stream_without_markers_is_one_task() {
        let mut s = TaskSplitter::new(None);
        for i in 0..5 {
            assert!(s.push(di(i, i as Pc, i == 0)).is_none());
        }
        let t = s.finish().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.seq, 0);
    }
}
