//! Per-task timing execution: one *attempt* schedules a task's
//! instructions on a processing unit starting at a given cycle, against
//! the current state of the older tasks in the window.
//!
//! The simulator re-runs an attempt from scratch whenever a memory
//! dependence violation is detected (squash & replay), so everything in
//! here is a pure function of the task, its start cycle, the older-task
//! records, and the (mutable, shared) memory system.
//!
//! Because squash & replay re-runs this code constantly, the attempt
//! state lives in an [`ExecScratch`] owned by the simulator and reused
//! across attempts and tasks: maps are cleared, not reallocated, and the
//! per-cycle port ledgers are dense vectors indexed from the attempt's
//! start cycle. The scratch is pure mechanism — reusing it is
//! observationally identical to fresh allocation (enforced by the
//! byte-identity CI gate on `repro all --json`).

use crate::config::MsConfig;
use crate::task::Task;
use mds_core::{DepEdge, Policy, SyncUnit};
use mds_emu::DynInst;
use mds_harness::hash::{FxHashMap, FxHashSet, Pool};
use mds_isa::{Addr, FuClass, Pc};
use mds_mem::{BankedCache, Bus, Cache};
use std::collections::VecDeque;

/// Dense architectural register file size (see `RegRef::dense_index`).
pub(crate) const REGS: usize = 64;

/// A store that executed within a task, as visible to younger tasks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreInfo {
    pub pc: Pc,
    pub complete: u64,
    pub idx: usize,
}

/// The finalized timing record of a task, kept in the active window for
/// the benefit of younger tasks. Its maps are pooled: when the record
/// leaves the window (or its attempt is squashed), hand it back via
/// [`ExecScratch::recycle`] so the next attempt reuses the allocations.
#[derive(Debug, Clone)]
pub(crate) struct TaskRecord {
    pub seq: u64,
    pub start_pc: Pc,
    pub stage: usize,
    pub commit: u64,
    pub max_completion: u64,
    pub last_branch_completion: u64,
    /// Final write time per dense register index (`None`: not written by
    /// this task). A flat table — register lookup is the single most
    /// frequent cross-task query.
    pub last_write: [Option<u64>; REGS],
    /// Youngest store per 8-byte-aligned word address.
    pub word_stores: FxHashMap<Addr, StoreInfo>,
    /// Youngest store per byte address (for `sb`).
    pub byte_stores: FxHashMap<Addr, StoreInfo>,
    /// Latest store completion per store PC (the MDST "signal" source).
    pub stores_by_pc: FxHashMap<Pc, u64>,
    /// Running max of store address-ready times (NEVER/WAIT and the
    /// incomplete-synchronization release rule).
    pub max_store_addr_ready: u64,
}

/// A detected cross-task memory dependence violation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Violation {
    pub edge: DepEdge,
    pub producer_task: u64,
    pub producer_task_pc: Pc,
    /// Cycle at which the older store executed (violation detection time).
    pub detect: u64,
    /// Whether the violated load had a (wrong) synchronization prediction.
    pub predicted: bool,
}

/// Per-load prediction/synchronization record used for training and the
/// table 8 breakdown.
#[derive(Debug, Clone)]
pub(crate) struct LoadEvent {
    /// `(edge, signal_found, caused_wait)` per predicted dependence.
    pub edges: Vec<(DepEdge, bool, bool)>,
    /// Whether any prediction matched this load.
    pub predicted: bool,
    /// For predicted loads: the load had to wait for a signal. For
    /// unpredicted loads: a violation occurred (filled by the caller for
    /// aborted attempts).
    pub actual_dependence: bool,
}

/// The result of one execution attempt.
#[derive(Debug)]
pub(crate) struct AttemptOutcome {
    pub record: TaskRecord,
    /// The earliest violation, if the attempt must be squashed.
    pub violation: Option<Violation>,
    /// Per-load events (valid for the committed attempt).
    pub load_events: Vec<LoadEvent>,
    /// Loads delayed by synchronization in this attempt.
    pub synchronized_loads: u64,
    /// Loads released by the deadlock-avoidance rule (false dependence).
    pub false_dep_releases: u64,
}

/// Mutable processor-wide state an attempt executes against.
pub(crate) struct Shared<'a> {
    pub config: &'a MsConfig,
    pub dcache: &'a mut BankedCache,
    pub bus: &'a mut Bus,
    pub icache: &'a mut Cache,
    pub unit: Option<&'a mut SyncUnit>,
}

/// A "K issues per cycle" resource (fully pipelined units: occupancy is
/// one cycle). Claims may arrive in any order relative to simulated time —
/// an out-of-order core issues whatever is ready — so this counts usage
/// per cycle instead of keeping a monotonic busy-until clock.
///
/// The ledger is a dense vector indexed by `cycle - base`: every claim in
/// an attempt happens at or after the attempt's start cycle, so the
/// offset stays small. Slots are epoch-tagged rather than zeroed: `reset`
/// bumps the epoch in O(1), and a slot whose tag is stale counts as
/// empty. This keeps `claim` — called twice per simulated instruction in
/// both replay engines — to a load, a compare, and a store in the common
/// case, with no per-attempt clearing or one-element-at-a-time growth.
#[derive(Debug, Clone, Copy, Default)]
struct PortSlot {
    epoch: u32,
    used: u32,
}

#[derive(Debug, Default)]
pub(crate) struct Ports {
    width: u32,
    base: u64,
    epoch: u32,
    slots: Vec<PortSlot>,
}

impl Ports {
    pub(crate) fn reset(&mut self, width: u32, t0: u64) {
        self.width = width.max(1);
        self.base = t0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped (after 2^32 attempts): stale tags could alias
            // the new epoch, so hard-clear once and restart from 1.
            self.slots.fill(PortSlot::default());
            self.epoch = 1;
        }
    }

    /// Claims the earliest cycle at or after `ready` with a free slot.
    pub(crate) fn claim(&mut self, ready: u64, _occupy: u64) -> u64 {
        // Claims before the base cannot happen in an attempt (readiness is
        // bounded below by the start cycle), but stay correct if one does.
        if ready < self.base {
            let shift = (self.base - ready) as usize;
            // Tag 0 is never the live epoch (reset skips it), so these
            // slots read as empty.
            self.slots
                .splice(0..0, std::iter::repeat_n(PortSlot::default(), shift));
            self.base = ready;
        }
        let mut idx = (ready - self.base) as usize;
        loop {
            if idx >= self.slots.len() {
                // Grow in chunks so the resize amortizes away.
                self.slots.resize(idx + 64, PortSlot::default());
            }
            let slot = &mut self.slots[idx];
            if slot.epoch != self.epoch {
                *slot = PortSlot {
                    epoch: self.epoch,
                    used: 1,
                };
                return self.base + idx as u64;
            }
            if slot.used < self.width {
                slot.used += 1;
                return self.base + idx as u64;
            }
            idx += 1;
        }
    }
}

/// Reusable attempt-local state: port ledgers, the retire queue, pooled
/// store maps, and the per-attempt bookkeeping vectors. One instance
/// lives in the simulator and is threaded through every attempt; nothing
/// in it survives an attempt observably.
#[derive(Debug, Default)]
pub(crate) struct ExecScratch {
    issue: Ports,
    simple: Ports,
    complex: Ports,
    fp: Ports,
    branch: Ports,
    mem: Ports,
    retire_queue: VecDeque<u64>,
    /// Pool backing `TaskRecord::word_stores` / `byte_stores`.
    store_maps: Pool<FxHashMap<Addr, StoreInfo>>,
    /// Pool backing `TaskRecord::stores_by_pc`.
    pc_maps: Pool<FxHashMap<Pc, u64>>,
    synced_edges: FxHashSet<DepEdge>,
    /// `(seq, start_pc)` of the window tasks, rebuilt per attempt for the
    /// ESYNC store-task lookup (the window cannot change mid-attempt).
    task_pcs: Vec<(u64, Pc)>,
    violations: Vec<Violation>,
}

impl ExecScratch {
    pub(crate) fn new() -> Self {
        ExecScratch::default()
    }

    /// Returns a retired (or squashed) record's maps to the pools.
    pub(crate) fn recycle(&mut self, record: TaskRecord) {
        self.store_maps.put(record.word_stores);
        self.store_maps.put(record.byte_stores);
        self.pc_maps.put(record.stores_by_pc);
    }
}

pub(crate) fn execute_attempt(
    task: &Task,
    t0: u64,
    stage: usize,
    window: &VecDeque<TaskRecord>,
    shared: &mut Shared<'_>,
    scratch: &mut ExecScratch,
) -> AttemptOutcome {
    let config = shared.config;
    let stages = config.stages;

    // --- Per-attempt scheduling state (cleared, not reallocated) --------
    let mut local_write: [Option<u64>; REGS] = [None; REGS];
    let mut cross_cache: [Option<u64>; REGS] = [None; REGS];
    scratch.issue.reset(config.issue_width, t0);
    scratch.simple.reset(config.simple_int_units, t0);
    scratch.complex.reset(config.complex_int_units, t0);
    scratch.fp.reset(config.fp_units, t0);
    scratch.branch.reset(config.branch_units, t0);
    scratch.mem.reset(config.mem_units, t0);
    scratch.retire_queue.clear();
    scratch.synced_edges.clear();
    scratch.violations.clear();
    scratch.task_pcs.clear();
    if matches!(config.policy, Policy::Sync | Policy::Esync) {
        scratch
            .task_pcs
            .extend(window.iter().map(|r| (r.seq, r.start_pc)));
    }
    let ExecScratch {
        issue: issue_ports,
        simple: simple_ports,
        complex: complex_ports,
        fp: fp_ports,
        branch: branch_ports,
        mem: mem_ports,
        retire_queue,
        store_maps,
        pc_maps,
        synced_edges,
        task_pcs,
        violations,
    } = scratch;

    // Fetch state.
    let mut fetch_clock = t0;
    let mut cur_block: Option<u64> = None;
    let mut in_group: u32 = 0;

    // Intra-task memory state.
    let mut intra_addr_ready: u64 = 0;
    let mut my_word_stores = store_maps.take();
    let mut my_byte_stores = store_maps.take();
    let mut stores_by_pc = pc_maps.take();
    let mut max_store_addr_ready: u64 = 0;

    // Window-derived aggregates.
    let window_addr_ready = window
        .iter()
        .map(|r| r.max_store_addr_ready)
        .max()
        .unwrap_or(0);

    // Result accumulation.
    let mut max_completion = t0;
    let mut last_branch_completion = t0;
    let mut load_events: Vec<LoadEvent> = Vec::new();
    let mut synchronized_loads = 0u64;
    let mut false_dep_releases = 0u64;

    for (idx, d) in task.insts.iter().enumerate() {
        // ---- Fetch through the per-unit I-cache ------------------------
        let block = ((d.pc as u64) * 4) & !63;
        if cur_block != Some(block) || in_group >= config.fetch_width {
            if cur_block.is_some() {
                fetch_clock += 1;
            }
            if !shared.icache.access(block, false) {
                fetch_clock = shared.bus.request(fetch_clock, 16);
            }
            cur_block = Some(block);
            in_group = 0;
        }
        in_group += 1;
        let mut dispatch = fetch_clock;

        // ---- Instruction window occupancy ------------------------------
        if retire_queue.len() >= config.window {
            let freed = retire_queue.pop_front().expect("non-empty window");
            dispatch = dispatch.max(freed);
        }

        // ---- Operand readiness (intra-task dataflow + ring) ------------
        let mut ready = dispatch;
        let mut base_ready = dispatch; // address operand only (for stores)
        for (slot, r) in d.inst.reads().into_iter().enumerate() {
            let Some(r) = r else { continue };
            let di = r.dense_index();
            let avail = match local_write[di] {
                Some(t) => t,
                None => *cross_cache[di].get_or_insert_with(|| {
                    resolve_cross_task(window, di, stage, stages, config.ring_latency)
                }),
            };
            ready = ready.max(avail);
            if slot == 0 {
                base_ready = base_ready.max(avail);
            }
        }

        // ---- Schedule on the functional units --------------------------
        let complete = if let Some(mem) = d.mem {
            let (complete, event) = schedule_mem(
                d,
                mem,
                idx,
                task,
                ready,
                base_ready,
                stage,
                window,
                shared,
                mem_ports,
                issue_ports,
                MemCtx {
                    intra_addr_ready: &mut intra_addr_ready,
                    my_word_stores: &mut my_word_stores,
                    my_byte_stores: &mut my_byte_stores,
                    stores_by_pc: &mut stores_by_pc,
                    max_store_addr_ready: &mut max_store_addr_ready,
                    violations,
                    synced_edges,
                    task_pcs,
                    synchronized_loads: &mut synchronized_loads,
                    false_dep_releases: &mut false_dep_releases,
                    window_addr_ready,
                },
            );
            if let Some(e) = event {
                load_events.push(e);
            }
            complete
        } else {
            let latency = shared.config.latencies.of(d.inst.op);
            let class_ports = match d.inst.op.fu_class() {
                FuClass::SimpleInt => &mut *simple_ports,
                FuClass::ComplexInt => &mut *complex_ports,
                FuClass::Fp => &mut *fp_ports,
                FuClass::Branch => &mut *branch_ports,
                FuClass::Mem => unreachable!("memory handled above"),
            };
            let start = class_ports.claim(issue_ports.claim(ready, 1), 1);
            start + latency
        };

        if d.inst.op.is_control() {
            last_branch_completion = last_branch_completion.max(complete);
        }
        if let Some(w) = d.inst.writes() {
            local_write[w.dense_index()] = Some(complete);
        }
        retire_queue.push_back(complete);
        max_completion = max_completion.max(complete);
    }

    let violation = violations.iter().copied().min_by_key(|v| v.detect);
    AttemptOutcome {
        record: TaskRecord {
            seq: task.seq,
            start_pc: task.start_pc,
            stage,
            commit: max_completion, // caller folds in in-order commit
            max_completion,
            last_branch_completion,
            // The per-task dataflow table doubles as the final-write
            // record: it already holds the last completion per register.
            last_write: local_write,
            word_stores: my_word_stores,
            byte_stores: my_byte_stores,
            stores_by_pc,
            max_store_addr_ready,
        },
        violation,
        load_events,
        synchronized_loads,
        false_dep_releases,
    }
}

fn resolve_cross_task(
    window: &VecDeque<TaskRecord>,
    dense: usize,
    consumer_stage: usize,
    stages: usize,
    ring_latency: u64,
) -> u64 {
    for rec in window.iter().rev() {
        if let Some(t) = rec.last_write[dense] {
            let hops = (consumer_stage + stages - rec.stage) % stages;
            return t + hops as u64 * ring_latency;
        }
    }
    0 // architecturally available (older tasks committed before we started)
}

struct MemCtx<'a> {
    intra_addr_ready: &'a mut u64,
    my_word_stores: &'a mut FxHashMap<Addr, StoreInfo>,
    my_byte_stores: &'a mut FxHashMap<Addr, StoreInfo>,
    stores_by_pc: &'a mut FxHashMap<Pc, u64>,
    max_store_addr_ready: &'a mut u64,
    violations: &'a mut Vec<Violation>,
    synced_edges: &'a mut FxHashSet<DepEdge>,
    task_pcs: &'a [(u64, Pc)],
    synchronized_loads: &'a mut u64,
    false_dep_releases: &'a mut u64,
    window_addr_ready: u64,
}

/// Locates the youngest store overlapping `(addr, size)` in the most
/// recent older task that has one.
///
/// Byte stores are rare (only `sb` produces them), so the 8-probe byte
/// scan is skipped entirely when a task has none — probing an empty map
/// returns `None` either way.
fn producer_in_window(
    window: &VecDeque<TaskRecord>,
    addr: Addr,
    size: u8,
) -> Option<(&TaskRecord, StoreInfo)> {
    for rec in window.iter().rev() {
        let mut best: Option<StoreInfo> = None;
        let mut consider = |s: Option<&StoreInfo>| {
            if let Some(s) = s {
                // Keep the youngest store (largest index within the task).
                if best.is_none_or(|b| s.idx > b.idx) {
                    best = Some(*s);
                }
            }
        };
        if size == 1 {
            consider(rec.byte_stores.get(&addr));
            consider(rec.word_stores.get(&(addr & !7)));
        } else {
            consider(rec.word_stores.get(&(addr & !7)));
            if !rec.byte_stores.is_empty() {
                for b in 0..8 {
                    consider(rec.byte_stores.get(&(addr + b)));
                }
            }
        }
        if let Some(s) = best {
            return Some((rec, s));
        }
    }
    None
}

/// Same-task forwarding source: youngest earlier store overlapping the
/// load.
fn intra_forward(
    words: &FxHashMap<Addr, StoreInfo>,
    bytes: &FxHashMap<Addr, StoreInfo>,
    addr: Addr,
    size: u8,
) -> Option<StoreInfo> {
    let mut best: Option<StoreInfo> = None;
    let mut consider = |s: Option<&StoreInfo>| {
        if let Some(s) = s {
            if best.is_none_or(|b| s.idx > b.idx) {
                best = Some(*s);
            }
        }
    };
    if size == 1 {
        consider(bytes.get(&addr));
        consider(words.get(&(addr & !7)));
    } else {
        consider(words.get(&(addr & !7)));
        if !bytes.is_empty() {
            for b in 0..8 {
                consider(bytes.get(&(addr + b)));
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn schedule_mem(
    d: &DynInst,
    mem: mds_emu::MemAccess,
    idx: usize,
    task: &Task,
    ready: u64,
    base_ready: u64,
    _stage: usize,
    window: &VecDeque<TaskRecord>,
    shared: &mut Shared<'_>,
    mem_ports: &mut Ports,
    issue_ports: &mut Ports,
    ctx: MemCtx<'_>,
) -> (u64, Option<LoadEvent>) {
    let config = shared.config;
    if mem.is_store {
        // Address becomes known once the base register is ready.
        *ctx.intra_addr_ready = (*ctx.intra_addr_ready).max(base_ready);
        *ctx.max_store_addr_ready = (*ctx.max_store_addr_ready).max(base_ready);
        let start = mem_ports.claim(issue_ports.claim(ready, 1), 1);
        let access = shared.dcache.access(start, mem.addr, true, shared.bus);
        let complete = access.done_at;
        let info = StoreInfo {
            pc: d.pc,
            complete,
            idx,
        };
        if mem.size == 1 {
            ctx.my_byte_stores.insert(mem.addr, info);
        } else {
            ctx.my_word_stores.insert(mem.addr & !7, info);
        }
        ctx.stores_by_pc
            .entry(d.pc)
            .and_modify(|t| *t = (*t).max(complete))
            .or_insert(complete);
        return (complete, None);
    }

    // ---- Load ----------------------------------------------------------
    // Intra-task disambiguation: never speculated. Wait for all earlier
    // same-task store addresses; forward from a matching earlier store.
    let mut ready_mem = ready.max(*ctx.intra_addr_ready);
    if let Some(fwd) = intra_forward(ctx.my_word_stores, ctx.my_byte_stores, mem.addr, mem.size) {
        ready_mem = ready_mem.max(fwd.complete);
    }

    let window_addr_ready = ctx.window_addr_ready;

    // Inter-task handling per policy.
    let producer = producer_in_window(window, mem.addr, mem.size);
    let ready_before_sync = ready_mem;
    let mut event: Option<LoadEvent> = None;
    let mut may_violate = false;

    match config.policy {
        Policy::Never => {
            ready_mem = ready_mem.max(window_addr_ready);
            if let Some((_, s)) = producer {
                ready_mem = ready_mem.max(s.complete);
            }
        }
        Policy::Wait => {
            if let Some((_, s)) = producer {
                ready_mem = ready_mem.max(window_addr_ready).max(s.complete);
            }
        }
        Policy::PSync => {
            if let Some((_, s)) = producer {
                ready_mem = ready_mem.max(s.complete);
            }
        }
        Policy::Always => {
            may_violate = true;
        }
        Policy::Sync | Policy::Esync => {
            let task_pcs = ctx.task_pcs;
            let lookup =
                move |seq: u64| task_pcs.iter().find(|(s, _)| *s == seq).map(|(_, pc)| *pc);
            let unit = shared.unit.as_mut().expect("sync policy has a unit");
            let mut entries = unit.predicted_entries_for_load(d.pc, task.seq, Some(&lookup));
            // Combined-structure slot limit: one sync entry per edge per
            // stage; later instances in the same task go unsynchronized.
            entries.retain(|e| ctx.synced_edges.insert(e.edge));
            if entries.is_empty() {
                may_violate = true;
            } else {
                let mut edges = Vec::with_capacity(entries.len());
                let mut wait_until = ready_mem;
                let mut any_missing = false;
                for e in &entries {
                    // The signalling store. Under distance tagging: the
                    // store with this edge's PC in the task at distance
                    // DIST. Under address tagging: the youngest older
                    // store with this edge's PC to the load's address.
                    let producer_seq = task.seq.checked_sub(e.dist as u64);
                    let signal = match config.tagging {
                        mds_core::TagScheme::DependenceDistance => producer_seq.and_then(|ps| {
                            window
                                .iter()
                                .find(|r| r.seq == ps)
                                .and_then(|r| r.stores_by_pc.get(&e.edge.store_pc))
                                .copied()
                        }),
                        mds_core::TagScheme::DataAddress => producer
                            .filter(|(_, info)| info.pc == e.edge.store_pc)
                            .map(|(_, info)| info.complete),
                    };
                    // Commit-time training strengthens only *correct*
                    // synchronizations: the signalling store was this
                    // load's actual producer. Waiting on a store that
                    // merely shares the PC (but wrote elsewhere this
                    // instance) is a false dependence and must weaken the
                    // prediction, or a single hot store PC would
                    // serialize every load that ever conflicted with it.
                    // (Whether the wait mattered *this* instance is
                    // deliberately ignored: timing jitter must not
                    // unlearn a real dependence.)
                    let is_producer = match config.tagging {
                        mds_core::TagScheme::DependenceDistance => {
                            producer.is_some_and(|(rec, info)| {
                                info.pc == e.edge.store_pc && Some(rec.seq) == producer_seq
                            })
                        }
                        // Address tagging synchronized with the youngest
                        // matching store to this exact address — the
                        // producer by construction.
                        mds_core::TagScheme::DataAddress => signal.is_some(),
                    };
                    match signal {
                        Some(t) => {
                            let wake = t + config.signal_latency;
                            edges.push((e.edge, true, is_producer));
                            wait_until = wait_until.max(wake);
                        }
                        None => {
                            any_missing = true;
                            edges.push((e.edge, false, false));
                        }
                    }
                }
                if any_missing {
                    // Incomplete synchronization (§4.4.2): the load is
                    // released once every older store's address is known
                    // and disambiguation clears it (the same condition that
                    // frees loads under NEVER/WAIT).
                    wait_until = wait_until.max(window_addr_ready);
                    *ctx.false_dep_releases += 1;
                }
                if wait_until > ready_before_sync {
                    *ctx.synchronized_loads += 1;
                }
                event = Some(LoadEvent {
                    edges,
                    predicted: true,
                    actual_dependence: wait_until > ready_before_sync,
                });
                ready_mem = wait_until;
                // A dependence on a store the predictor did not name can
                // still violate.
                may_violate = true;
            }
        }
    }

    let start = mem_ports.claim(issue_ports.claim(ready_mem, 1), 1);
    let access = shared.dcache.access(start, mem.addr, false, shared.bus);
    let complete = access.done_at;

    if may_violate {
        if let Some((rec, s)) = producer {
            if s.complete > start {
                ctx.violations.push(Violation {
                    edge: DepEdge {
                        load_pc: d.pc,
                        store_pc: s.pc,
                    },
                    producer_task: rec.seq,
                    producer_task_pc: rec.start_pc,
                    detect: s.complete,
                    predicted: event.as_ref().is_some_and(|e| e.predicted),
                });
                if let Some(ev) = &mut event {
                    ev.actual_dependence = true;
                } else if config.policy.uses_predictor() {
                    event = Some(LoadEvent {
                        edges: Vec::new(),
                        predicted: false,
                        actual_dependence: true,
                    });
                }
            }
        }
    }
    if event.is_none() && config.policy.uses_predictor() {
        event = Some(LoadEvent {
            edges: Vec::new(),
            predicted: false,
            actual_dependence: false,
        });
    }
    (complete, event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports(width: u32, t0: u64) -> Ports {
        let mut p = Ports::default();
        p.reset(width, t0);
        p
    }

    #[test]
    fn ports_allow_width_per_cycle() {
        let mut p = ports(2, 0);
        assert_eq!(p.claim(10, 1), 10);
        assert_eq!(p.claim(10, 1), 10);
        assert_eq!(p.claim(10, 1), 11); // third claim spills to the next cycle
        assert_eq!(p.claim(11, 1), 11); // cycle 11 has one free slot left
        assert_eq!(p.claim(11, 1), 12); // now it is full
    }

    #[test]
    fn ports_are_order_insensitive() {
        // A late-ready claim must not block an earlier-ready one issued
        // after it — the OOO property the busy-until model got wrong.
        let mut p = ports(1, 0);
        assert_eq!(p.claim(100, 1), 100);
        assert_eq!(p.claim(5, 1), 5);
        assert_eq!(p.claim(5, 1), 6);
    }

    #[test]
    fn ports_tolerate_claims_before_the_base() {
        // Cannot happen in an attempt, but the ledger must stay correct.
        let mut p = ports(1, 50);
        assert_eq!(p.claim(50, 1), 50);
        assert_eq!(p.claim(10, 1), 10);
        assert_eq!(p.claim(10, 1), 11);
        assert_eq!(p.claim(50, 1), 51); // cycle 50 already claimed above
    }

    #[test]
    fn ports_reset_clears_the_ledger() {
        let mut p = ports(1, 0);
        assert_eq!(p.claim(3, 1), 3);
        p.reset(1, 3);
        assert_eq!(p.claim(3, 1), 3); // claimable again after reset
    }

    fn record(seq: u64, stage: usize) -> TaskRecord {
        TaskRecord {
            seq,
            start_pc: 0,
            stage,
            commit: 0,
            max_completion: 0,
            last_branch_completion: 0,
            last_write: [None; REGS],
            word_stores: FxHashMap::default(),
            byte_stores: FxHashMap::default(),
            stores_by_pc: FxHashMap::default(),
            max_store_addr_ready: 0,
        }
    }

    #[test]
    fn producer_in_window_prefers_youngest_task_and_store() {
        let mut older = record(1, 1);
        older.word_stores.insert(
            0x100,
            StoreInfo {
                pc: 4,
                complete: 50,
                idx: 2,
            },
        );
        older.word_stores.insert(
            0x100 & !7,
            StoreInfo {
                pc: 9,
                complete: 60,
                idx: 7,
            },
        );
        let mut newer = record(2, 2);
        newer.byte_stores.insert(
            0x103,
            StoreInfo {
                pc: 5,
                complete: 70,
                idx: 1,
            },
        );
        let window: VecDeque<TaskRecord> = [older, newer].into_iter().collect();
        // The byte store in the NEWER task overlaps the word load.
        let (rec, info) = producer_in_window(&window, 0x100, 8).expect("found");
        assert_eq!(rec.seq, 2);
        assert_eq!(info.pc, 5);
        // A disjoint address finds nothing.
        assert!(producer_in_window(&window, 0x200, 8).is_none());
    }

    #[test]
    fn intra_forward_finds_youngest_overlapping_store() {
        let mut words = FxHashMap::default();
        let mut bytes = FxHashMap::default();
        words.insert(
            0x40u64,
            StoreInfo {
                pc: 1,
                complete: 10,
                idx: 3,
            },
        );
        bytes.insert(
            0x44u64,
            StoreInfo {
                pc: 2,
                complete: 20,
                idx: 5,
            },
        );
        // The byte store is younger (idx 5) and overlaps the word load.
        let f = intra_forward(&words, &bytes, 0x40, 8).expect("forward");
        assert_eq!(f.idx, 5);
        // A byte load at a non-stored byte still hits the word store.
        let f = intra_forward(&words, &bytes, 0x41, 1).expect("forward");
        assert_eq!(f.idx, 3);
        assert!(intra_forward(&words, &bytes, 0x80, 8).is_none());
    }

    #[test]
    fn cross_task_resolution_walks_newest_first_and_adds_ring_hops() {
        let mut a = record(1, 1);
        a.last_write[5] = Some(100);
        let mut b = record(2, 2);
        b.last_write[5] = Some(200);
        let window: VecDeque<TaskRecord> = [a, b].into_iter().collect();
        // Consumer on stage 3: producer is task 2 on stage 2 -> 1 hop.
        assert_eq!(resolve_cross_task(&window, 5, 3, 4, 1), 201);
        // Register 6 is written by nobody in the window: architecturally
        // available.
        assert_eq!(resolve_cross_task(&window, 6, 3, 4, 1), 0);
        // Ring distance wraps: consumer stage 0, producer stage 2 -> 2 hops.
        assert_eq!(resolve_cross_task(&window, 5, 0, 4, 1), 202);
    }

    #[test]
    fn scratch_recycles_record_maps() {
        let mut scratch = ExecScratch::new();
        let mut rec = record(1, 0);
        rec.word_stores.insert(
            0x40,
            StoreInfo {
                pc: 1,
                complete: 1,
                idx: 0,
            },
        );
        scratch.recycle(rec);
        // Two store maps and one PC map shelved, all cleared.
        assert!(scratch.store_maps.take().is_empty());
        assert!(scratch.store_maps.take().is_empty());
        assert!(scratch.pc_maps.take().is_empty());
    }
}
