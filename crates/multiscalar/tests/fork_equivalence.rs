//! Property test: the fork-replay engine is observationally identical to
//! scratch replay.
//!
//! For any randomized committed instruction stream — random task
//! boundaries, mixed word/byte loads and stores over a small colliding
//! address pool, ALU/FP/branch filler, recycled PCs so the MDPT actually
//! trains — running all six speculation policies through
//! [`mds_multiscalar::run_fused`] (one shared-prefix walk, per-policy
//! forks) must produce results byte-identical to six independent
//! [`Multiscalar::run_trace`] replays: cycles, violation counts,
//! synchronization counts, and the full serialized result document.

use mds_core::Policy;
use mds_emu::{BranchOutcome, DynInst, MemAccess, Trace, TraceSummary};
use mds_harness::json::ToJson;
use mds_harness::prelude::*;
use mds_isa::{Instruction, Opcode, Pc, Reg};
use mds_multiscalar::{run_fused, MsConfig, Multiscalar};

/// Synthesizes one committed record from a `(kind, sel)` pair.
///
/// The stream is deliberately adversarial for the replay plan: addresses
/// come from a 24-byte pool so word and byte accesses partially overlap
/// across tasks, PCs recycle every 40 slots so dependence predictors see
/// repeated static instructions, and task boundaries arrive at irregular
/// intervals.
fn record(i: usize, kind: usize, sel: u16) -> DynInst {
    let sel = sel as usize;
    let pc = ((i * 7 + sel) % 40) as Pc;
    let base = 0x1000_0000u64;
    let addr = base + (sel % 24) as u64;
    let size = if sel.is_multiple_of(3) { 1 } else { 8 };
    let xr = |n: usize| Reg::x((n % 32) as u8);
    let fr = |n: usize| Reg::f((n % 32) as u8);
    let (inst, mem, branch) = match kind {
        0 => (
            Instruction::rrr(Opcode::Add, xr(sel), xr(sel / 3), xr(sel / 7)),
            None,
            None,
        ),
        1 => (
            Instruction::rri(Opcode::Addi, xr(sel), xr(sel / 5), sel as i32),
            None,
            None,
        ),
        2 => (
            Instruction::rrr(Opcode::Mul, xr(sel), xr(sel / 3), xr(sel / 7)),
            None,
            None,
        ),
        3 => (
            Instruction::rrr(Opcode::FAdd, fr(sel), fr(sel / 3), fr(sel / 7)),
            None,
            None,
        ),
        4 => (
            Instruction::branch(Opcode::Bne, xr(sel), xr(sel / 3), (sel % 40) as i32),
            None,
            Some(BranchOutcome {
                taken: sel.is_multiple_of(2),
                next_pc: ((sel * 3) % 40) as Pc,
            }),
        ),
        5 | 6 => (
            Instruction::load(
                if size == 1 { Opcode::Lb } else { Opcode::Ld },
                xr(sel),
                xr(sel / 3),
                0,
            ),
            Some(MemAccess {
                addr,
                size,
                is_store: false,
            }),
            None,
        ),
        _ => (
            Instruction::store(
                if size == 1 { Opcode::Sb } else { Opcode::Sd },
                xr(sel),
                xr(sel / 3),
                0,
            ),
            Some(MemAccess {
                addr,
                size,
                is_store: true,
            }),
            None,
        ),
    };
    DynInst {
        seq: i as u64,
        pc,
        inst,
        mem,
        branch,
        new_task: sel.is_multiple_of(9),
    }
}

properties! {
    #![config(PropConfig { cases: 12, ..PropConfig::default() })]

    /// Fused cross-policy fork replay equals independent scratch replays
    /// for every policy, at 4 and 8 stages, over randomized traces.
    #[test]
    fn fork_replay_equals_scratch_replay(
        cells in vec_of((0usize..9, any::<u16>()), 20..250),
    ) {
        let records: Vec<DynInst> = cells
            .iter()
            .enumerate()
            .map(|(i, &(kind, sel))| record(i, kind, sel))
            .collect();
        let trace = Trace::from_parts(records, TraceSummary::default());

        for stages in [4usize, 8] {
            let configs: Vec<MsConfig> = Policy::ALL
                .iter()
                .map(|&policy| MsConfig::paper(stages, policy))
                .collect();
            let fused = run_fused(&trace, &configs);
            prop_assert_eq!(fused.len(), configs.len());
            for (config, forked) in configs.iter().zip(&fused) {
                let scratch = Multiscalar::new(config.clone())
                    .run_trace(trace.records().iter().copied());
                prop_assert_eq!(scratch.cycles, forked.cycles);
                prop_assert_eq!(scratch.misspeculations, forked.misspeculations);
                prop_assert_eq!(
                    scratch.synchronized_loads,
                    forked.synchronized_loads
                );
                prop_assert_eq!(
                    scratch.to_json().to_string(),
                    forked.to_json().to_string()
                );
            }
        }
    }
}
