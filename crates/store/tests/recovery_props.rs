//! Crash-recovery property tests against an in-memory reference model.
//!
//! The store's recovery contract is deterministic: after any torn tail,
//! in-place corruption, or epoch change, the recovered state equals the
//! fold of the longest valid record prefix (current-epoch records only,
//! last write wins). That makes the reference model trivial — replay the
//! same appends into a `HashMap`, cutting at the same boundary — and lets
//! the properties drive arbitrary damage into real files.

use mds_harness::prelude::*;
use mds_harness::tempdir::TempDir;
use mds_store::{Store, StoreConfig};
use std::collections::HashMap;

/// Opens a store with automatic compaction disabled so record boundaries
/// stay where the appends put them.
fn open(dir: &std::path::Path, epoch: u64) -> Store {
    Store::open(
        dir,
        StoreConfig {
            epoch,
            compact_threshold_bytes: 0,
        },
    )
    .expect("open store")
}

/// One generated append: a key drawn from a small pool (so last-wins
/// collisions actually happen) and a short arbitrary-ish value.
fn arb_append() -> impl Strategy<Value = (String, String)> {
    (0u8..6, vec_of(97u8..123, 0..16)).prop_map(|(k, bytes)| {
        let value = String::from_utf8(bytes).expect("ascii");
        (format!("k{k}@tiny"), value)
    })
}

/// Replays `appends` into the store, returning each record's end offset
/// in `log.mds` so properties can map a byte offset to a record index.
fn fill(store: &Store, appends: &[(String, String)]) -> Vec<u64> {
    appends
        .iter()
        .map(|(k, v)| {
            store.append(k, v).expect("append");
            store.log_bytes()
        })
        .collect()
}

/// The reference model: fold of the first `n` appends, last write wins.
fn model_of(appends: &[(String, String)], n: usize) -> HashMap<String, String> {
    let mut model = HashMap::new();
    for (k, v) in &appends[..n] {
        model.insert(k.clone(), v.clone());
    }
    model
}

/// Asserts the recovered store equals the model exactly (both directions,
/// via the sorted iterator).
fn assert_matches(store: &Store, model: &HashMap<String, String>) {
    let mut expected: Vec<(&String, &String)> = model.iter().collect();
    expected.sort();
    let recovered: Vec<(String, String)> = store.iter().map(|(k, v)| (k, v.to_string())).collect();
    let expected: Vec<(String, String)> = expected
        .into_iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    assert_eq!(recovered, expected);
}

properties! {
    #[test]
    fn torn_tail_recovers_the_longest_valid_prefix(
        appends in vec_of(arb_append(), 1..24),
        cut in 0u32..4096,
    ) {
        let tmp = TempDir::new("mds-store-prop-torn").unwrap();
        let ends = {
            let store = open(tmp.path(), 1);
            fill(&store, &appends)
        };
        let log = tmp.join("log.mds");
        let len = std::fs::read(&log).unwrap().len() as u64;
        let cut = u64::from(cut) % (len + 1);
        let f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Every record wholly inside the first `cut` bytes survives; the
        // rest is a torn tail.
        let survivors = ends.iter().filter(|&&end| end <= cut).count();
        let store = open(tmp.path(), 1);
        assert_matches(&store, &model_of(&appends, survivors));
        prop_assert_eq!(
            store.recovery().log_records as usize, survivors,
            "applied record count"
        );

        // The store must keep working after the truncation.
        store.append("fresh@tiny", "post-crash").unwrap();
        let again = open(tmp.path(), 1);
        prop_assert_eq!(again.get("fresh@tiny").as_deref(), Some("post-crash"));
        prop_assert_eq!(again.recovery().corrupt_bytes, 0, "reopen is clean");
    }

    #[test]
    fn flipped_byte_discards_from_the_damaged_record_on(
        appends in vec_of(arb_append(), 1..24),
        victim in 0u32..4096,
        bit in 0u8..8,
    ) {
        let tmp = TempDir::new("mds-store-prop-flip").unwrap();
        let ends = {
            let store = open(tmp.path(), 1);
            fill(&store, &appends)
        };
        let log = tmp.join("log.mds");
        let mut bytes = std::fs::read(&log).unwrap();
        let victim = victim as usize % bytes.len();
        bytes[victim] ^= 1 << bit;
        std::fs::write(&log, &bytes).unwrap();

        // Records strictly before the one containing the flipped byte
        // survive; the damaged record and everything after it (now
        // unverifiable) are dropped. A flip inside the 8-byte file
        // header voids the whole file.
        let survivors = ends.iter().filter(|&&end| end <= victim as u64).count();
        let store = open(tmp.path(), 1);
        assert_matches(&store, &model_of(&appends, survivors));
        prop_assert!(store.recovery().corrupt_bytes > 0, "damage was counted");

        store.append("fresh@tiny", "post-corruption").unwrap();
        let again = open(tmp.path(), 1);
        prop_assert_eq!(again.get("fresh@tiny").as_deref(), Some("post-corruption"));
    }

    #[test]
    fn stale_epochs_are_skipped_not_served(
        sessions in vec_of((1u64..3, vec_of(arb_append(), 0..8)), 1..6),
    ) {
        let tmp = TempDir::new("mds-store-prop-epoch").unwrap();
        // Interleave appends written under epoch 1 and epoch 2 by
        // reopening the same directory with a different configured epoch.
        for (epoch, appends) in &sessions {
            let store = open(tmp.path(), *epoch);
            fill(&store, appends);
        }
        for check_epoch in 1u64..3 {
            let matching: Vec<(String, String)> = sessions
                .iter()
                .filter(|(e, _)| *e == check_epoch)
                .flat_map(|(_, a)| a.iter().cloned())
                .collect();
            let stale: usize = sessions
                .iter()
                .filter(|(e, _)| *e != check_epoch)
                .map(|(_, a)| a.len())
                .sum();
            let store = open(tmp.path(), check_epoch);
            assert_matches(&store, &model_of(&matching, matching.len()));
            prop_assert_eq!(store.recovery().stale_skipped as usize, stale);
            prop_assert_eq!(store.recovery().corrupt_bytes, 0, "stale is not corrupt");
        }
    }

    #[test]
    fn compaction_and_reopen_preserve_state_exactly(
        appends in vec_of(arb_append(), 0..24),
        compact in any::<bool>(),
    ) {
        let tmp = TempDir::new("mds-store-prop-compact").unwrap();
        let model = model_of(&appends, appends.len());
        {
            let store = open(tmp.path(), 1);
            fill(&store, &appends);
            if compact {
                store.compact().unwrap();
                prop_assert_eq!(store.log_bytes(), mds_store::MAGIC.len() as u64);
            }
            assert_matches(&store, &model);
        }
        let once = open(tmp.path(), 1);
        assert_matches(&once, &model);
        drop(once);
        let twice = open(tmp.path(), 1);
        assert_matches(&twice, &model);
        prop_assert_eq!(twice.recovery().corrupt_bytes, 0);
    }
}
