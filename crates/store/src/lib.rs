//! Durable result tier: a crash-safe append-only log + snapshot of
//! canonical `(experiment, scale) → result-bytes` entries.
//!
//! The serving tier's byte-identity guarantee (every surface renders the
//! same canonical results document for a key) makes cached responses
//! safely reusable across *process lifetimes*, not just within one. This
//! crate persists them: an `mds-serve` backend opened with `--store`
//! replays the store into its result cache at boot, so a restart, deploy,
//! or `kill -9` does not re-pay the ~670× cold/warm gap across the key
//! space.
//!
//! # On-disk format
//!
//! A store directory holds two files, both in the same record format:
//!
//! - `log.mds` — the append-only live tail; every cache fill appends one
//!   record (`write` + `fsync`).
//! - `snapshot.mds` — the compacted prefix: one record per live key,
//!   rewritten atomically (`write tmp`, `fsync`, `rename`) when the log
//!   outgrows its threshold, after which the log is truncated.
//!
//! Each file starts with an 8-byte magic (`mdsstor1`, version folded into
//! the last byte). A record is:
//!
//! ```text
//! u64 checksum   FNV-1a 64 over the remaining record bytes
//! u64 epoch      output epoch the value was computed under
//! u32 key_len    length of the key in bytes
//! u32 val_len    length of the value in bytes
//! [u8] key       canonical cache key, e.g. "fig5@tiny"
//! [u8] value     canonical result bytes (the repro JSON document)
//! ```
//!
//! All integers little-endian. Recovery scans each file from the header:
//!
//! - A record that extends past end-of-file is a **torn tail** (the
//!   process died mid-append); the file is truncated to the last good
//!   record and the store keeps appending from there.
//! - A checksum mismatch (or an implausible length field) means the log
//!   was corrupted in place; everything from that point on is discarded —
//!   the classic write-ahead-log rule, because lengths live inside the
//!   checksummed region and nothing after an unverifiable record can be
//!   trusted. Valid entries before the corruption survive.
//! - A record whose epoch differs from the store's configured epoch is
//!   valid but **stale**: the simulator changed since it was written, so
//!   replaying it would serve wrong bytes. It is skipped (counted) and
//!   disappears entirely at the next compaction.
//!
//! Within one epoch, later records win: the log is a history, the
//! in-memory map is its fold.
//!
//! Everything is plain `std`: no dependencies, no unsafe code.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// File magic: `mdsstor` + format version `1`.
pub const MAGIC: [u8; 8] = *b"mdsstor1";

/// Fixed bytes per record before the key: checksum + epoch + two lengths.
const RECORD_HEAD: usize = 8 + 8 + 4 + 4;

/// Hard cap on key length; anything larger in a length field is treated
/// as corruption, not a record.
pub const MAX_KEY_BYTES: usize = 4 * 1024;

/// Hard cap on value length; result documents are a few KB, so 64 MiB is
/// generous headroom while still catching flipped length bytes.
pub const MAX_VALUE_BYTES: usize = 64 * 1024 * 1024;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FNV-1a 64 over `bytes` — the record checksum. Deterministic and
/// dependency-free; collisions are irrelevant here because the threat
/// model is accidental corruption, not an adversary.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes one record (checksum included) into `out`.
fn encode_record(out: &mut Vec<u8>, epoch: u64, key: &str, value: &str) {
    let payload_at = out.len() + 8;
    out.extend_from_slice(&[0u8; 8]); // checksum placeholder
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value.as_bytes());
    let checksum = fnv1a(&out[payload_at..]);
    out[payload_at - 8..payload_at].copy_from_slice(&checksum.to_le_bytes());
}

/// Store tunables.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// The output epoch current values are computed under. Records
    /// carrying any other epoch are skipped at recovery and dropped at
    /// compaction.
    pub epoch: u64,
    /// Compact (snapshot + truncate the log) once the log exceeds this
    /// many bytes. `0` disables automatic compaction.
    pub compact_threshold_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            epoch: 0,
            compact_threshold_bytes: 8 * 1024 * 1024,
        }
    }
}

/// What recovery found when the store was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Valid current-epoch records applied from the snapshot.
    pub snapshot_records: u64,
    /// Valid current-epoch records applied from the log.
    pub log_records: u64,
    /// Valid records skipped because their epoch is stale.
    pub stale_skipped: u64,
    /// Bytes discarded as a torn tail or in-place corruption (summed
    /// across both files).
    pub corrupt_bytes: u64,
}

/// Mutable store state behind one lock: the fold of the on-disk history
/// plus the open log handle.
struct Inner {
    live: HashMap<String, Arc<str>>,
    log: File,
    log_bytes: u64,
    snapshot_bytes: u64,
}

/// A durable key → canonical-result-bytes store over one directory.
///
/// Thread-safe behind interior mutability: the serving tier holds an
/// `Arc<Store>` and appends from any worker.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    recovery: Recovery,
    appends: AtomicU64,
    append_errors: AtomicU64,
    compactions: AtomicU64,
}

/// One file's scan outcome.
struct Scan {
    /// Byte length of the valid prefix (header included).
    valid_len: u64,
    /// Valid current-epoch records applied.
    applied: u64,
    /// Valid records skipped for a stale epoch.
    stale: u64,
    /// Bytes past the valid prefix (torn or corrupt).
    dropped: u64,
}

/// Folds one file's records into `live` under the recovery policy
/// described in the module docs.
fn scan(bytes: &[u8], epoch: u64, live: &mut HashMap<String, Arc<str>>) -> Scan {
    let mut out = Scan {
        valid_len: 0,
        applied: 0,
        stale: 0,
        dropped: bytes.len() as u64,
    };
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        // No (or foreign) header: nothing here is trustworthy.
        return out;
    }
    let mut at = MAGIC.len();
    out.valid_len = at as u64;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < RECORD_HEAD {
            break; // torn tail: a partial record head
        }
        let checksum = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
        let rec_epoch = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let key_len = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes")) as usize;
        let val_len = u32::from_le_bytes(rest[20..24].try_into().expect("4 bytes")) as usize;
        if key_len == 0 || key_len > MAX_KEY_BYTES || val_len > MAX_VALUE_BYTES {
            break; // implausible lengths: corruption, not a record
        }
        let total = RECORD_HEAD + key_len + val_len;
        if rest.len() < total {
            break; // torn tail: the record extends past end-of-file
        }
        if fnv1a(&rest[8..total]) != checksum {
            break; // in-place corruption: nothing after this is trusted
        }
        let key = match std::str::from_utf8(&rest[RECORD_HEAD..RECORD_HEAD + key_len]) {
            Ok(k) => k,
            Err(_) => break,
        };
        let value = match std::str::from_utf8(&rest[RECORD_HEAD + key_len..total]) {
            Ok(v) => v,
            Err(_) => break,
        };
        if rec_epoch == epoch {
            live.insert(key.to_string(), Arc::from(value));
            out.applied += 1;
        } else {
            out.stale += 1;
        }
        at += total;
        out.valid_len = at as u64;
    }
    out.dropped = bytes.len() as u64 - out.valid_len;
    out
}

/// Best-effort directory fsync, so creates and renames inside `dir`
/// survive a crash. Errors are surfaced: durability is the entire point.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Store {
    /// Opens (creating if necessary) the store in `dir`, recovering the
    /// snapshot and log: torn tails are truncated, corruption discards
    /// the unverifiable suffix, stale-epoch records are skipped.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut live = HashMap::new();
        let mut recovery = Recovery::default();

        // Snapshot first (the compacted prefix), then the log (the live
        // tail): within an epoch, log records override snapshot records.
        let snapshot_path = dir.join("snapshot.mds");
        let mut snapshot_bytes = 0u64;
        if snapshot_path.exists() {
            let bytes = std::fs::read(&snapshot_path)?;
            let s = scan(&bytes, config.epoch, &mut live);
            recovery.snapshot_records = s.applied;
            recovery.stale_skipped += s.stale;
            recovery.corrupt_bytes += s.dropped;
            if s.valid_len < bytes.len() as u64 {
                // Truncate in place so the next scan starts clean. A
                // snapshot with no valid header is emptied entirely.
                let f = OpenOptions::new().write(true).open(&snapshot_path)?;
                f.set_len(s.valid_len)?;
                f.sync_all()?;
            }
            snapshot_bytes = s.valid_len;
        }

        let log_path = dir.join("log.mds");
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)?;
        let created = bytes.is_empty();
        let log_bytes = if created {
            log.write_all(&MAGIC)?;
            log.sync_all()?;
            sync_dir(&dir)?;
            MAGIC.len() as u64
        } else {
            let s = scan(&bytes, config.epoch, &mut live);
            recovery.log_records = s.applied;
            recovery.stale_skipped += s.stale;
            recovery.corrupt_bytes += s.dropped;
            if s.valid_len < bytes.len() as u64 {
                log.set_len(s.valid_len)?;
                log.sync_all()?;
            }
            if s.valid_len == 0 {
                // The whole file was garbage (no valid header): reset it
                // to an empty, well-formed log. `read_to_end` left the
                // cursor at the old EOF, so rewind before writing.
                log.seek(SeekFrom::Start(0))?;
                log.write_all(&MAGIC)?;
                log.sync_all()?;
                MAGIC.len() as u64
            } else {
                s.valid_len
            }
        };
        log.seek(SeekFrom::End(0))?;

        Ok(Store {
            dir,
            config,
            inner: Mutex::new(Inner {
                live,
                log,
                log_bytes,
                snapshot_bytes,
            }),
            recovery,
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        })
    }

    /// What recovery found at open time.
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// The output epoch this store tags appends with.
    pub fn epoch(&self) -> u64 {
        self.config.epoch
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one entry (`write` + `fsync`) and folds it into the live
    /// map.
    ///
    /// Appends never compact inline: a compaction rewrites the whole
    /// snapshot under the store lock, which would turn the unlucky
    /// threshold-crossing append into a multi-millisecond stall on the
    /// serving path. Crossing the threshold only marks compaction as
    /// due; a maintenance point (the serving tier's background sweep, or
    /// any caller of [`Store::compact_if_due`]) performs it off the
    /// request path.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an empty or oversized key/value; otherwise any
    /// I/O error from the write or fsync. On an I/O error the in-memory
    /// map is left untouched, so the store never claims durability it
    /// does not have.
    pub fn append(&self, key: &str, value: &str) -> io::Result<()> {
        if key.is_empty() || key.len() > MAX_KEY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("store key must be 1..={MAX_KEY_BYTES} bytes"),
            ));
        }
        if value.len() > MAX_VALUE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("store value exceeds {MAX_VALUE_BYTES} bytes"),
            ));
        }
        let mut record = Vec::with_capacity(RECORD_HEAD + key.len() + value.len());
        encode_record(&mut record, self.config.epoch, key, value);

        let mut inner = lock(&self.inner);
        let result = inner
            .log
            .write_all(&record)
            .and_then(|()| inner.log.sync_data());
        if let Err(e) = result {
            self.append_errors.fetch_add(1, Ordering::Relaxed);
            // The file offset may now sit mid-record; recovery would
            // truncate the torn tail, and so do we, so a later append
            // doesn't interleave with the partial one.
            let good = inner.log_bytes;
            let _ = inner.log.set_len(good);
            let _ = inner.log.seek(SeekFrom::End(0));
            return Err(e);
        }
        inner.log_bytes += record.len() as u64;
        inner.live.insert(key.to_string(), Arc::from(value));
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the log has outgrown its compaction threshold. Always
    /// `false` when automatic compaction is disabled (`threshold == 0`).
    pub fn compaction_due(&self) -> bool {
        let threshold = self.config.compact_threshold_bytes;
        threshold > 0 && lock(&self.inner).log_bytes > threshold
    }

    /// Compacts if (and only if) the log has outgrown its threshold —
    /// the drain-point half of the deferred-compaction contract (see
    /// [`Store::append`]). Returns whether a compaction ran.
    pub fn compact_if_due(&self) -> io::Result<bool> {
        if !self.compaction_due() {
            return Ok(false);
        }
        self.compact()?;
        Ok(true)
    }

    /// The stored value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        lock(&self.inner).live.get(key).cloned()
    }

    /// Iterates every live entry in key order — the boot-time replay API.
    /// The order is deterministic so prewarm logs and tests are stable.
    pub fn iter(&self) -> impl Iterator<Item = (String, Arc<str>)> {
        let mut entries: Vec<(String, Arc<str>)> = lock(&self.inner)
            .live
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).live.len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes in the append-only log (header included).
    pub fn log_bytes(&self) -> u64 {
        lock(&self.inner).log_bytes
    }

    /// Bytes in the snapshot file (header included; 0 before the first
    /// compaction).
    pub fn snapshot_bytes(&self) -> u64 {
        lock(&self.inner).snapshot_bytes
    }

    /// Successful appends since open.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Failed appends since open.
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Compacts now: writes every live entry to `snapshot.tmp`, fsyncs,
    /// atomically renames it over `snapshot.mds`, then truncates the log
    /// to an empty header. Stale-epoch and superseded records vanish
    /// here. Crash-safe at every step: a crash between rename and
    /// truncate merely replays some log records that the snapshot
    /// already holds (last-wins makes that idempotent).
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = lock(&self.inner);
        let mut entries: Vec<(&String, &Arc<str>)> = inner.live.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut bytes = Vec::with_capacity(MAGIC.len() + entries.len() * 256);
        bytes.extend_from_slice(&MAGIC);
        for (key, value) in entries {
            encode_record(&mut bytes, self.config.epoch, key, value);
        }
        let tmp = self.dir.join("snapshot.tmp");
        let snapshot = self.dir.join("snapshot.mds");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &snapshot)?;
        sync_dir(&self.dir)?;
        inner.snapshot_bytes = bytes.len() as u64;
        inner.log.set_len(MAGIC.len() as u64)?;
        inner.log.sync_all()?;
        inner.log.seek(SeekFrom::End(0))?;
        inner.log_bytes = MAGIC.len() as u64;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("epoch", &self.config.epoch)
            .field("len", &self.len())
            .field("log_bytes", &self.log_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::tempdir::TempDir;

    fn open(dir: &Path, epoch: u64) -> Store {
        Store::open(
            dir,
            StoreConfig {
                epoch,
                compact_threshold_bytes: 0,
            },
        )
        .expect("open store")
    }

    #[test]
    fn appends_survive_reopen_with_last_write_winning() {
        let tmp = TempDir::new("mds-store-reopen").unwrap();
        {
            let store = open(tmp.path(), 7);
            store.append("fig5@tiny", "v1").unwrap();
            store.append("table1@tiny", "t1").unwrap();
            store.append("fig5@tiny", "v2").unwrap();
            assert_eq!(store.appends(), 3);
            assert_eq!(store.len(), 2);
        }
        let store = open(tmp.path(), 7);
        assert_eq!(store.recovery().log_records, 3);
        assert_eq!(store.get("fig5@tiny").as_deref(), Some("v2"));
        assert_eq!(store.get("table1@tiny").as_deref(), Some("t1"));
        let keys: Vec<String> = store.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["fig5@tiny", "table1@tiny"], "iter is key-sorted");
    }

    #[test]
    fn epoch_change_invalidates_stored_entries() {
        let tmp = TempDir::new("mds-store-epoch").unwrap();
        {
            let store = open(tmp.path(), 1);
            store.append("fig5@tiny", "old bytes").unwrap();
        }
        let store = open(tmp.path(), 2);
        assert!(
            store.get("fig5@tiny").is_none(),
            "stale epoch must not serve"
        );
        assert_eq!(store.recovery().stale_skipped, 1);
        // New-epoch appends coexist in the log until compaction.
        store.append("fig5@tiny", "new bytes").unwrap();
        store.compact().unwrap();
        let again = open(tmp.path(), 2);
        assert_eq!(again.get("fig5@tiny").as_deref(), Some("new bytes"));
        assert_eq!(
            again.recovery().stale_skipped,
            0,
            "compaction dropped stale"
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let tmp = TempDir::new("mds-store-torn").unwrap();
        {
            let store = open(tmp.path(), 0);
            store.append("a@tiny", "alpha").unwrap();
            store.append("b@tiny", "beta").unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let log = tmp.path().join("log.mds");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

        let store = open(tmp.path(), 0);
        assert_eq!(store.recovery().log_records, 1);
        assert!(store.recovery().corrupt_bytes > 0);
        assert_eq!(store.get("a@tiny").as_deref(), Some("alpha"));
        assert!(store.get("b@tiny").is_none());
        store.append("c@tiny", "gamma").unwrap();
        let again = open(tmp.path(), 0);
        assert_eq!(again.get("c@tiny").as_deref(), Some("gamma"));
        assert_eq!(again.recovery().corrupt_bytes, 0);
    }

    #[test]
    fn flipped_byte_discards_the_suffix_but_not_the_prefix() {
        let tmp = TempDir::new("mds-store-flip").unwrap();
        let first_end;
        {
            let store = open(tmp.path(), 0);
            store.append("a@tiny", "alpha").unwrap();
            first_end = store.log_bytes();
            store.append("b@tiny", "beta").unwrap();
            store.append("c@tiny", "gamma").unwrap();
        }
        // Flip one byte inside the second record's value region.
        let log = tmp.path().join("log.mds");
        let mut bytes = std::fs::read(&log).unwrap();
        let victim = first_end as usize + RECORD_HEAD + 2;
        bytes[victim] ^= 0x40;
        std::fs::write(&log, &bytes).unwrap();

        let store = open(tmp.path(), 0);
        assert_eq!(store.get("a@tiny").as_deref(), Some("alpha"));
        assert!(
            store.get("b@tiny").is_none(),
            "corrupt record must not serve"
        );
        assert!(
            store.get("c@tiny").is_none(),
            "records after corruption are untrusted"
        );
        assert_eq!(store.recovery().log_records, 1);
        assert!(store.recovery().corrupt_bytes > 0);
    }

    #[test]
    fn garbage_file_resets_to_an_empty_store() {
        let tmp = TempDir::new("mds-store-garbage").unwrap();
        std::fs::write(tmp.path().join("log.mds"), b"not a store at all").unwrap();
        let store = open(tmp.path(), 0);
        assert!(store.is_empty());
        assert!(store.recovery().corrupt_bytes > 0);
        store.append("a@tiny", "ok").unwrap();
        let again = open(tmp.path(), 0);
        assert_eq!(again.get("a@tiny").as_deref(), Some("ok"));
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_state() {
        let tmp = TempDir::new("mds-store-compact").unwrap();
        let store = open(tmp.path(), 3);
        for round in 0..10 {
            store.append("k@tiny", &format!("value {round}")).unwrap();
        }
        let before = store.log_bytes();
        store.compact().unwrap();
        assert!(store.log_bytes() < before);
        assert_eq!(store.log_bytes(), MAGIC.len() as u64);
        assert!(store.snapshot_bytes() > MAGIC.len() as u64);
        assert_eq!(store.get("k@tiny").as_deref(), Some("value 9"));

        let again = open(tmp.path(), 3);
        assert_eq!(again.recovery().snapshot_records, 1);
        assert_eq!(again.recovery().log_records, 0);
        assert_eq!(again.get("k@tiny").as_deref(), Some("value 9"));
    }

    #[test]
    fn automatic_compaction_fires_past_the_threshold() {
        let tmp = TempDir::new("mds-store-auto").unwrap();
        let store = Store::open(
            tmp.path(),
            StoreConfig {
                epoch: 0,
                compact_threshold_bytes: 256,
            },
        )
        .unwrap();
        for i in 0..50 {
            store
                .append(&format!("k{i}@tiny"), "0123456789abcdef")
                .unwrap();
        }
        // Appends only mark compaction as due; the drain point runs it.
        assert!(store.compaction_due());
        assert!(store.compact_if_due().unwrap());
        assert!(store.compactions() > 0);
        assert!(!store.compaction_due(), "compaction reset the log");
        assert!(!store.compact_if_due().unwrap(), "not due: a no-op");
        assert_eq!(store.len(), 50);
        let again = open(tmp.path(), 0);
        assert_eq!(again.len(), 50);
    }

    #[test]
    fn threshold_crossing_append_does_not_compact_inline() {
        let tmp = TempDir::new("mds-store-deferred").unwrap();
        let store = Store::open(
            tmp.path(),
            StoreConfig {
                epoch: 0,
                compact_threshold_bytes: 64,
            },
        )
        .unwrap();
        // Blow far past the threshold: every append must stay a pure
        // log write (no snapshot rewrite sneaking onto the append path).
        for i in 0..20 {
            store
                .append(&format!("k{i}@tiny"), "0123456789abcdef")
                .unwrap();
        }
        assert_eq!(store.compactions(), 0, "append never compacts inline");
        assert_eq!(store.snapshot_bytes(), 0, "no snapshot written yet");
        assert!(store.log_bytes() > 64, "the log is allowed to overshoot");
        assert!(store.compaction_due());
        // The maintenance sweep eventually drains the debt.
        assert!(store.compact_if_due().unwrap());
        assert_eq!(store.log_bytes(), MAGIC.len() as u64);
        assert_eq!(store.len(), 20);
        let again = open(tmp.path(), 0);
        assert_eq!(again.recovery().snapshot_records, 20);
    }

    #[test]
    fn compaction_never_due_when_disabled() {
        let tmp = TempDir::new("mds-store-disabled").unwrap();
        let store = open(tmp.path(), 0); // threshold 0: disabled
        for i in 0..50 {
            store
                .append(&format!("k{i}@tiny"), "0123456789abcdef")
                .unwrap();
        }
        assert!(!store.compaction_due());
        assert!(!store.compact_if_due().unwrap());
        assert_eq!(store.compactions(), 0);
    }

    #[test]
    fn invalid_keys_and_oversized_values_are_refused() {
        let tmp = TempDir::new("mds-store-invalid").unwrap();
        let store = open(tmp.path(), 0);
        assert!(store.append("", "v").is_err());
        assert!(store.append(&"k".repeat(MAX_KEY_BYTES + 1), "v").is_err());
        assert_eq!(store.append_errors(), 0, "validation is not an I/O error");
        assert!(store.is_empty());
    }
}
