//! Path-based next-target prediction (after Jacobson et al., HPCA 1997).
//!
//! The Multiscalar sequencer must guess the *next task's* start PC from the
//! current task and the recent control-flow path. We implement the scheme
//! the paper cites for its control-flow predictor: a prediction table
//! indexed by a hash of the last few task targets (the *path*), with a
//! short confidence counter per entry.

use crate::counter::SatCounter;

/// A rolling hash over the last `depth` control-flow targets.
///
/// Updating folds the newest target into the register and ages older ones
/// out, so equal paths hash equal and different recent histories (almost
/// always) hash different.
///
/// # Examples
///
/// ```
/// use mds_predict::PathHistory;
/// let mut a = PathHistory::new(4);
/// let mut b = PathHistory::new(4);
/// for t in [1u32, 2, 3] { a.push(t); b.push(t); }
/// assert_eq!(a.hash(), b.hash());
/// b.push(9);
/// assert_ne!(a.hash(), b.hash());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathHistory {
    targets: Vec<u32>,
    depth: usize,
}

impl PathHistory {
    /// Creates an empty history remembering the last `depth` targets.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "path depth must be positive");
        PathHistory {
            targets: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Records a new target, forgetting the oldest once `depth` is reached.
    pub fn push(&mut self, target: u32) {
        if self.targets.len() == self.depth {
            self.targets.remove(0);
        }
        self.targets.push(target);
    }

    /// The current path hash.
    pub fn hash(&self) -> u64 {
        // FNV-1a over the targets with their position mixed in.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, &t) in self.targets.iter().enumerate() {
            h ^= (t as u64).wrapping_add((i as u64) << 32);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Clears the history (used after a squash to a known point).
    pub fn clear(&mut self) {
        self.targets.clear();
    }
}

#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    target: u32,
    confidence: SatCounter,
}

/// A path-indexed next-target predictor with confidence counters.
///
/// `predict` hashes (current PC, path) into a direct-mapped table and
/// returns the stored target when the tag matches; `update` trains the
/// entry with the actual outcome, strengthening on agreement and replacing
/// the target once confidence decays to zero.
///
/// # Examples
///
/// ```
/// use mds_predict::{PathHistory, PathPredictor};
/// let mut p = PathPredictor::new(256, 4);
/// let mut hist = PathHistory::new(4);
/// hist.push(5);
/// // Teach the predictor that task 5 under this path flows to task 9.
/// p.update(5, hist.hash(), 9);
/// assert_eq!(p.predict(5, hist.hash()), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct PathPredictor {
    entries: Vec<Option<Entry>>,
    mask: u64,
    counter_bits: u8,
}

impl PathPredictor {
    /// Creates a predictor with `slots` entries (rounded up to a power of
    /// two) and the given path depth hint (unused directly; callers keep
    /// their own [`PathHistory`] of that depth).
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: usize, _path_depth: usize) -> Self {
        assert!(slots > 0, "predictor must have at least one slot");
        let n = slots.next_power_of_two();
        PathPredictor {
            entries: vec![None; n],
            mask: (n - 1) as u64,
            counter_bits: 2,
        }
    }

    fn index(&self, pc: u32, path_hash: u64) -> (usize, u64) {
        let key = path_hash ^ ((pc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        ((key & self.mask) as usize, key >> 16)
    }

    /// Predicts the next target for `pc` under the given path, or `None`
    /// when no confident entry exists.
    pub fn predict(&self, pc: u32, path_hash: u64) -> Option<u32> {
        let (idx, tag) = self.index(pc, path_hash);
        match &self.entries[idx] {
            Some(e) if e.tag == tag => Some(e.target),
            _ => None,
        }
    }

    /// Trains the predictor with the actual next target.
    pub fn update(&mut self, pc: u32, path_hash: u64, actual: u32) {
        let (idx, tag) = self.index(pc, path_hash);
        match &mut self.entries[idx] {
            Some(e) if e.tag == tag => {
                if e.target == actual {
                    e.confidence.incr();
                } else if e.confidence.value() == 0 {
                    e.target = actual;
                    e.confidence = SatCounter::new(self.counter_bits, 1);
                } else {
                    e.confidence.decr();
                }
            }
            slot => {
                *slot = Some(Entry {
                    tag,
                    target: actual,
                    confidence: SatCounter::new(self.counter_bits, 1),
                });
            }
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn learns_a_stable_mapping() {
        let mut p = PathPredictor::new(64, 2);
        let h = 42u64;
        assert_eq!(p.predict(10, h), None);
        p.update(10, h, 20);
        assert_eq!(p.predict(10, h), Some(20));
    }

    #[test]
    fn hysteresis_before_retarget() {
        let mut p = PathPredictor::new(64, 2);
        let h = 7;
        p.update(1, h, 100);
        p.update(1, h, 100); // confidence 2
        p.update(1, h, 200); // decay to 1, keep 100
        assert_eq!(p.predict(1, h), Some(100));
        p.update(1, h, 200); // decay to 0, keep 100
        assert_eq!(p.predict(1, h), Some(100));
        p.update(1, h, 200); // confidence 0 -> replace
        assert_eq!(p.predict(1, h), Some(200));
    }

    #[test]
    fn distinct_paths_predict_distinct_targets() {
        let mut p = PathPredictor::new(1024, 4);
        let mut ha = PathHistory::new(4);
        let mut hb = PathHistory::new(4);
        ha.push(1);
        hb.push(2);
        for _ in 0..3 {
            p.update(50, ha.hash(), 60);
            p.update(50, hb.hash(), 70);
        }
        assert_eq!(p.predict(50, ha.hash()), Some(60));
        assert_eq!(p.predict(50, hb.hash()), Some(70));
    }

    #[test]
    fn learns_alternating_sequence_with_path() {
        // Task 5's successor alternates 8, 9, 8, 9 — a counter-only scheme
        // mispredicts half the time, but the path disambiguates.
        let mut p = PathPredictor::new(256, 4);
        let hist = PathHistory::new(4);
        let seq = [8u32, 9, 8, 9, 8, 9, 8, 9, 8, 9, 8, 9];
        // Two training passes.
        for _ in 0..2 {
            let mut h = hist.clone();
            for &next in &seq {
                p.update(5, h.hash(), next);
                h.push(next);
            }
        }
        // Now verify predictions along the path.
        let mut correct = 0;
        let mut h = hist.clone();
        for &next in &seq {
            if p.predict(5, h.hash()) == Some(next) {
                correct += 1;
            }
            h.push(next);
        }
        assert!(
            correct >= 10,
            "path predictor should capture alternation, got {correct}/12"
        );
    }

    #[test]
    fn history_depth_limits_memory() {
        let mut h = PathHistory::new(2);
        h.push(1);
        h.push(2);
        let h12 = h.hash();
        h.push(3); // forgets 1
        let mut h2 = PathHistory::new(2);
        h2.push(2);
        h2.push(3);
        assert_eq!(h.hash(), h2.hash());
        assert_ne!(h.hash(), h12);
    }

    #[test]
    fn clear_resets_history() {
        let mut h = PathHistory::new(3);
        let empty = h.hash();
        h.push(4);
        assert_ne!(h.hash(), empty);
        h.clear();
        assert_eq!(h.hash(), empty);
    }

    #[test]
    #[should_panic(expected = "path depth")]
    fn zero_depth_panics() {
        let _ = PathHistory::new(0);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(PathPredictor::new(100, 2).capacity(), 128);
    }

    properties! {
        #[test]
        fn update_then_predict_same_key(pc in any::<u32>(), h in any::<u64>(), t in any::<u32>()) {
            let mut p = PathPredictor::new(16, 2);
            p.update(pc, h, t);
            prop_assert_eq!(p.predict(pc, h), Some(t));
        }
    }
}
