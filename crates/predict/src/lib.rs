//! Generic prediction substrate shared by the dependence predictor
//! (`mds-core`) and the Multiscalar sequencer (`mds-multiscalar`).
//!
//! The paper leans on three classic hardware idioms, which this crate
//! provides as reusable, well-tested components:
//!
//! - [`SatCounter`]: n-bit up/down saturating counters (the MDPT's
//!   prediction field is a 3-bit counter with threshold 3),
//! - [`LruTable`]: a fixed-capacity associative table with true LRU
//!   replacement (the MDPT, MDST, DDC, and task-descriptor caches are all
//!   LRU-managed associative structures),
//! - [`PathPredictor`] and [`ReturnAddressStack`]: the path-based next-task
//!   prediction scheme (after Jacobson et al.) used by the Multiscalar
//!   sequencer, including its 64-entry return address stack.
//!
//! # Examples
//!
//! ```
//! use mds_predict::SatCounter;
//!
//! let mut c = SatCounter::new(3, 0); // 3-bit counter, starts at 0
//! for _ in 0..10 { c.incr(); }
//! assert_eq!(c.value(), 7); // saturates at 2^3 - 1
//! assert!(c.is_at_least(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod lru;
pub mod path;
pub mod ras;

pub use counter::SatCounter;
pub use lru::LruTable;
pub use path::{PathHistory, PathPredictor};
pub use ras::ReturnAddressStack;
