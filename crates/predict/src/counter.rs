//! N-bit up/down saturating counters.

use std::fmt;

/// An n-bit up/down saturating counter (1 ≤ n ≤ 16).
///
/// This is the MDPT prediction field of the paper: a 3-bit counter taking
/// values 0–7, predicting "synchronize" when the value is at or above the
/// threshold (3 in the paper's evaluation). It is equally usable as a
/// 2-bit branch-style confidence counter.
///
/// # Examples
///
/// ```
/// use mds_predict::SatCounter;
/// let mut c = SatCounter::new(3, 4);
/// c.decr();
/// assert_eq!(c.value(), 3);
/// for _ in 0..20 { c.decr(); }
/// assert_eq!(c.value(), 0); // saturates low
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u16,
    max: u16,
}

impl SatCounter {
    /// Creates a counter with `bits` bits of state starting at `initial`
    /// (clamped to the representable range).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn new(bits: u8, initial: u16) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "counter width must be 1..=16 bits"
        );
        let max = if bits == 16 {
            u16::MAX
        } else {
            (1u16 << bits) - 1
        };
        SatCounter {
            value: initial.min(max),
            max,
        }
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u16 {
        self.value
    }

    /// Largest representable value (`2^bits - 1`).
    #[inline]
    pub fn max(&self) -> u16 {
        self.max
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn incr(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decr(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Returns `true` when the value is at or above `threshold`.
    #[inline]
    pub fn is_at_least(&self, threshold: u16) -> bool {
        self.value >= threshold
    }

    /// Forces the counter to its maximum (used when a mis-speculation must
    /// immediately establish a strong "synchronize" prediction).
    pub fn saturate(&mut self) {
        self.value = self.max;
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SatCounter::new(2, 0);
        c.decr();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.incr();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn initial_value_is_clamped() {
        let c = SatCounter::new(2, 100);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn threshold_comparison() {
        let c = SatCounter::new(3, 3);
        assert!(c.is_at_least(3));
        assert!(!c.is_at_least(4));
    }

    #[test]
    fn saturate_and_reset() {
        let mut c = SatCounter::new(3, 1);
        c.saturate();
        assert_eq!(c.value(), 7);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_bits_panics() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn too_wide_panics() {
        let _ = SatCounter::new(17, 0);
    }

    #[test]
    fn sixteen_bit_counter_works() {
        let mut c = SatCounter::new(16, u16::MAX - 1);
        c.incr();
        c.incr();
        assert_eq!(c.value(), u16::MAX);
    }

    #[test]
    fn display_shows_value_and_max() {
        assert_eq!(SatCounter::new(3, 4).to_string(), "4/7");
    }

    properties! {
        #[test]
        fn value_always_in_range(bits in 1u8..=16, ops in vec_of(any::<bool>(), 0..200)) {
            let mut c = SatCounter::new(bits, 0);
            for up in ops {
                if up { c.incr() } else { c.decr() }
                prop_assert!(c.value() <= c.max());
            }
        }

        #[test]
        fn incr_then_decr_is_identity_away_from_bounds(bits in 2u8..=8, start in 1u16..5) {
            let mut c = SatCounter::new(bits, start.min((1 << bits) - 2));
            let before = c.value();
            c.incr();
            c.decr();
            prop_assert_eq!(c.value(), before);
        }
    }
}
