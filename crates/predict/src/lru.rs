//! A fixed-capacity associative table with true LRU replacement.

use mds_harness::hash::FxHashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    // `None` while the slot sits on the free list.
    entry: Option<(K, V)>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity key→value table with O(1) lookup and true
/// least-recently-used replacement.
///
/// This models the fully associative, LRU-managed hardware tables the paper
/// uses everywhere: the MDPT, the data dependence cache (DDC), and the
/// sequencer's task-descriptor cache. `get` counts as a use; inserting into
/// a full table evicts the least recently used entry and returns it.
///
/// # Examples
///
/// ```
/// use mds_predict::LruTable;
/// let mut t = LruTable::new(2);
/// t.insert("a", 1);
/// t.insert("b", 2);
/// t.get(&"a"); // touch "a"; "b" is now LRU
/// let evicted = t.insert("c", 3).unwrap();
/// assert_eq!(evicted, ("b", 2));
/// assert!(t.contains(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct LruTable<K, V> {
    map: FxHashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruTable<K, V> {
    /// Creates a table holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruTable capacity must be positive");
        LruTable {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` when `key` is present (does **not** touch LRU state).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks a key up and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        self.nodes[idx].entry.as_ref().map(|(_, v)| v)
    }

    /// Mutable lookup; marks the entry most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        self.nodes[idx].entry.as_mut().map(|(_, v)| v)
    }

    /// Looks a key up **without** updating recency (for monitoring and
    /// assertions).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.nodes[idx].entry.as_ref().map(|(_, v)| v)
    }

    /// Inserts or updates an entry, making it most recently used. When an
    /// insert into a full table displaces the LRU entry, that entry is
    /// returned.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            if let Some((_, v)) = self.nodes[idx].entry.as_mut() {
                *v = value;
            }
            self.touch(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.free.push(lru);
            let old = self.nodes[lru].entry.take().expect("occupied LRU slot");
            self.map.remove(&old.0);
            Some(old)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot].entry = Some((key.clone(), value));
                slot
            }
            None => {
                self.nodes.push(Node {
                    entry: Some((key.clone(), value)),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.nodes[idx].entry.take().map(|(_, v)| v)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// The key that would be evicted next (least recently used).
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            return None;
        }
        self.nodes[self.tail].entry.as_ref().map(|(k, _)| k)
    }

    /// Iterates over entries from most to least recently used.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            table: self,
            cursor: self.head,
        }
    }

    /// Retains only entries for which the predicate holds.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &V) -> bool) {
        let doomed: Vec<K> = self
            .iter()
            .filter(|(k, v)| !pred(k, v))
            .map(|(k, _)| (*k).clone())
            .collect();
        for k in doomed {
            self.remove(&k);
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// Iterator over a [`LruTable`] from most to least recently used.
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    table: &'a LruTable<K, V>,
    cursor: usize,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while self.cursor != NIL {
            let node = &self.table.nodes[self.cursor];
            self.cursor = node.next;
            if let Some((k, v)) = node.entry.as_ref() {
                return Some((k, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn insert_get_update() {
        let mut t = LruTable::new(4);
        assert!(t.is_empty());
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.get(&1), Some(&"a"));
        assert_eq!(t.insert(1, "b"), None); // update, no eviction
        assert_eq!(t.get(&1), Some(&"b"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.get(&1);
        assert_eq!(t.insert(3, 30), Some((2, 20)));
        assert!(t.contains(&1));
        assert!(t.contains(&3));
        assert!(!t.contains(&2));
    }

    #[test]
    fn get_mut_touches() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        *t.get_mut(&1).unwrap() += 1;
        assert_eq!(t.insert(3, 30), Some((2, 20)));
        assert_eq!(t.peek(&1), Some(&11));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        t.peek(&1);
        assert_eq!(t.insert(3, 30), Some((1, 10)));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut t = LruTable::new(2);
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.remove(&1), Some(10));
        assert_eq!(t.remove(&1), None);
        assert_eq!(t.insert(3, 30), None); // no eviction needed
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn iter_orders_mru_first() {
        let mut t = LruTable::new(3);
        t.insert(1, ());
        t.insert(2, ());
        t.insert(3, ());
        t.get(&1);
        let keys: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 2]);
        assert_eq!(t.lru_key(), Some(&2));
    }

    #[test]
    fn retain_removes_matching() {
        let mut t = LruTable::new(4);
        for i in 0..4 {
            t.insert(i, i * 10);
        }
        t.retain(|k, _| k % 2 == 0);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&0));
        assert!(t.contains(&2));
        assert!(!t.contains(&1));
    }

    #[test]
    fn clear_empties() {
        let mut t = LruTable::new(2);
        t.insert(1, 1);
        t.clear();
        assert!(t.is_empty());
        t.insert(2, 2);
        assert_eq!(t.get(&2), Some(&2));
    }

    #[test]
    fn reuses_freed_slots_without_growth() {
        let mut t = LruTable::new(2);
        for i in 0..100 {
            t.insert(i, i);
        }
        assert_eq!(t.len(), 2);
        assert!(t.nodes.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LruTable<u8, u8> = LruTable::new(0);
    }

    /// Reference model: VecDeque with MRU at the front.
    struct Model {
        order: VecDeque<(u32, u32)>,
        cap: usize,
    }

    impl Model {
        fn get(&mut self, k: u32) -> Option<u32> {
            let pos = self.order.iter().position(|(key, _)| *key == k)?;
            let e = self.order.remove(pos).unwrap();
            self.order.push_front(e);
            Some(self.order[0].1)
        }
        fn insert(&mut self, k: u32, v: u32) -> Option<(u32, u32)> {
            if let Some(pos) = self.order.iter().position(|(key, _)| *key == k) {
                self.order.remove(pos);
                self.order.push_front((k, v));
                return None;
            }
            let evicted = if self.order.len() == self.cap {
                self.order.pop_back()
            } else {
                None
            };
            self.order.push_front((k, v));
            evicted
        }
        fn remove(&mut self, k: u32) -> Option<u32> {
            let pos = self.order.iter().position(|(key, _)| *key == k)?;
            Some(self.order.remove(pos).unwrap().1)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Get(u32),
        Insert(u32, u32),
        Remove(u32),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..16).prop_map(Op::Get),
            (0u32..16, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u32..16).prop_map(Op::Remove),
        ]
    }

    properties! {
        #[test]
        fn behaves_like_reference_model(
            cap in 1usize..8,
            ops in vec_of(arb_op(), 0..200),
        ) {
            let mut table = LruTable::new(cap);
            let mut model = Model { order: VecDeque::new(), cap };
            for op in ops {
                match op {
                    Op::Get(k) => {
                        prop_assert_eq!(table.get(&k).copied(), model.get(k));
                    }
                    Op::Insert(k, v) => {
                        prop_assert_eq!(table.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(table.remove(&k), model.remove(k));
                    }
                }
                prop_assert_eq!(table.len(), model.order.len());
                prop_assert!(table.len() <= cap);
                // Full order agreement, MRU first.
                let got: Vec<u32> = table.iter().map(|(k, _)| *k).collect();
                let want: Vec<u32> = model.order.iter().map(|(k, _)| *k).collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
