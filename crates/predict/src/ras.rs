//! A fixed-depth return address stack.

/// A hardware return-address stack of bounded depth.
///
/// The Multiscalar sequencer in the paper includes a 64-entry RAS; calls
/// push the return target, returns pop it. On overflow the oldest entry is
/// dropped (wrap-around), matching real hardware rather than growing.
///
/// # Examples
///
/// ```
/// use mds_predict::ReturnAddressStack;
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(10);
/// ras.push(20);
/// assert_eq!(ras.pop(), Some(20));
/// assert_eq!(ras.pop(), Some(10));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    slots: Vec<u32>,
    top: usize,   // index of next free slot (modular)
    count: usize, // live entries, <= depth
}

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be positive");
        ReturnAddressStack {
            slots: vec![0; depth],
            top: 0,
            count: 0,
        }
    }

    /// Maximum depth.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Live entries (saturates at `depth`).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pushes a return address; overwrites the oldest entry when full.
    pub fn push(&mut self, addr: u32) {
        self.slots[self.top] = addr;
        self.top = (self.top + 1) % self.slots.len();
        self.count = (self.count + 1).min(self.slots.len());
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u32> {
        if self.count == 0 {
            return None;
        }
        self.top = (self.top + self.slots.len() - 1) % self.slots.len();
        self.count -= 1;
        Some(self.slots[self.top])
    }

    /// Reads the most recent return address without popping.
    pub fn peek(&self) -> Option<u32> {
        if self.count == 0 {
            return None;
        }
        let idx = (self.top + self.slots.len() - 1) % self.slots.len();
        Some(self.slots[idx])
    }

    /// Discards all entries (after a squash past unknown call depth).
    pub fn clear(&mut self) {
        self.count = 0;
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        for a in [1, 2, 3] {
            r.push(a);
        }
        assert_eq!(r.peek(), Some(3));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn clear_discards() {
        let mut r = ReturnAddressStack::new(4);
        r.push(9);
        r.clear();
        assert_eq!(r.pop(), None);
        assert_eq!(r.peek(), None);
    }

    #[test]
    #[should_panic(expected = "RAS depth")]
    fn zero_depth_panics() {
        let _ = ReturnAddressStack::new(0);
    }

    properties! {
        #[test]
        fn matches_vec_model_when_within_depth(
            depth in 1usize..16,
            ops in vec_of(option_of(any::<u32>()), 0..100),
        ) {
            let mut ras = ReturnAddressStack::new(depth);
            let mut model: Vec<u32> = Vec::new();
            for op in ops {
                match op {
                    Some(a) => {
                        ras.push(a);
                        model.push(a);
                        if model.len() > depth {
                            model.remove(0); // oldest dropped
                        }
                    }
                    None => {
                        prop_assert_eq!(ras.pop(), model.pop());
                    }
                }
                prop_assert_eq!(ras.len(), model.len());
                prop_assert_eq!(ras.peek(), model.last().copied());
            }
        }
    }
}
