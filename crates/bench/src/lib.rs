//! The reproduction harness: one generator per table and figure of the
//! paper, shared by the `repro` binary and the integration tests.
//!
//! Everything is driven by a [`Harness`], which builds each workload once
//! per scale and memoizes Multiscalar runs keyed by
//! `(workload, stages, policy)` — the same run feeds several tables, and
//! the full reproduction reuses it everywhere.
//!
//! # Examples
//!
//! ```
//! use mds_bench::Harness;
//! use mds_workloads::Scale;
//!
//! let mut h = Harness::new(Scale::Tiny);
//! let t3 = mds_bench::table3(&mut h);
//! assert!(t3.render().contains("compress"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mds_core::Policy;
use mds_emu::Emulator;
use mds_isa::Program;
use mds_multiscalar::{FuLatencies, MsConfig, MsResult, Multiscalar};
use mds_ooo::{OooConfig, OooSim, WindowAnalyzer, WindowConfig, WindowReport};
use mds_sim::table::{fmt_abbrev, fmt_count, Table};
use mds_workloads::{int92_suite, spec95_suite, Scale, Workload};
use std::collections::HashMap;

/// The DDC sizes measured in tables 5 and 7.
pub const DDC_SIZES_TABLE5: [usize; 3] = [32, 128, 512];
/// The DDC sizes swept in table 7.
pub const DDC_SIZES_TABLE7: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];
/// The window sizes of the unrealistic-OOO studies (tables 3–5).
pub const WINDOW_SIZES: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Builds programs once and memoizes every simulation run.
pub struct Harness {
    scale: Scale,
    programs: HashMap<&'static str, Program>,
    ms_runs: HashMap<(&'static str, usize, Policy), MsResult>,
    window_reports: HashMap<&'static str, WindowReport>,
}

impl Harness {
    /// Creates a harness at the given workload scale.
    pub fn new(scale: Scale) -> Self {
        Harness {
            scale,
            programs: HashMap::new(),
            ms_runs: HashMap::new(),
            window_reports: HashMap::new(),
        }
    }

    /// The scale this harness runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The program for a workload (built once).
    pub fn program(&mut self, wl: &Workload) -> &Program {
        let scale = self.scale;
        self.programs
            .entry(wl.name)
            .or_insert_with(|| (wl.build)(scale))
    }

    /// A memoized Multiscalar run. ALWAYS runs carry the table 7 DDC
    /// sweep so mis-speculation locality comes for free.
    pub fn run(&mut self, wl: &Workload, stages: usize, policy: Policy) -> MsResult {
        let key = (wl.name, stages, policy);
        if let Some(r) = self.ms_runs.get(&key) {
            return r.clone();
        }
        let program = self.program(wl).clone();
        let mut config = MsConfig::paper(stages, policy);
        if policy == Policy::Always {
            config = config.with_ddc_sizes(&DDC_SIZES_TABLE7);
        }
        let result = Multiscalar::new(config)
            .run(&program)
            .expect("workloads run to completion");
        self.ms_runs.insert(key, result.clone());
        result
    }

    /// A memoized unrealistic-OOO window analysis (tables 3–5).
    pub fn window_report(&mut self, wl: &Workload) -> WindowReport {
        if let Some(r) = self.window_reports.get(wl.name) {
            return r.clone();
        }
        let program = self.program(wl).clone();
        let mut analyzer = WindowAnalyzer::new(WindowConfig {
            window_sizes: WINDOW_SIZES.to_vec(),
            ddc_sizes: DDC_SIZES_TABLE5.to_vec(),
        });
        Emulator::new(&program)
            .run_with(|d| analyzer.observe(d))
            .expect("workloads run to completion");
        let report = analyzer.finish();
        self.window_reports.insert(wl.name, report.clone());
        report
    }
}

fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Table 1: committed dynamic instruction counts per benchmark (plus the
/// average task size, which the paper discusses per benchmark in §5.5).
pub fn table1(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "benchmark",
        "suite",
        "committed instructions",
        "avg task size",
    ]);
    for wl in mds_workloads::all() {
        let program = h.program(&wl).clone();
        let sum = Emulator::new(&program).run_with(|_| {}).expect("runs");
        let suite = match wl.suite {
            mds_workloads::Suite::Int92 => "int92",
            mds_workloads::Suite::Spec95Int => "spec95-int",
            mds_workloads::Suite::Spec95Fp => "spec95-fp",
        };
        let task_size = if sum.tasks == 0 {
            "-".to_string()
        } else {
            format!("{:.0}", sum.instructions as f64 / sum.tasks as f64)
        };
        t.row([
            wl.name.to_string(),
            suite.to_string(),
            fmt_abbrev(sum.instructions),
            task_size,
        ]);
    }
    t
}

/// Table 2: functional-unit latencies (configuration, not measurement).
pub fn table2() -> Table {
    let mut t = Table::new(["unit", "operation", "latency (cycles)"]);
    for (unit, op, lat) in FuLatencies::default().table_rows() {
        t.row([unit.to_string(), op.to_string(), lat.to_string()]);
    }
    t
}

/// Table 3: unrealistic OOO — dynamic mis-speculations vs window size.
pub fn table3(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &WINDOW_SIZES {
        let mut row = vec![ws.to_string()];
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            row.push(fmt_abbrev(
                r.for_window(ws).expect("configured ws").misspeculations,
            ));
        }
        t.row(row);
    }
    t
}

/// Table 4: static dependences responsible for 99.9 % of
/// mis-speculations, per window size.
pub fn table4(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &WINDOW_SIZES {
        let mut row = vec![ws.to_string()];
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            row.push(
                r.for_window(ws)
                    .expect("configured ws")
                    .edges_covering(0.999)
                    .to_string(),
            );
        }
        t.row(row);
    }
    t
}

/// Table 5: DDC miss rate (%) as a function of window size and DDC size.
pub fn table5(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string(), "CS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &[32u32, 128, 512] {
        for &cs in &DDC_SIZES_TABLE5 {
            let mut row = vec![ws.to_string(), cs.to_string()];
            for wl in int92_suite() {
                let r = h.window_report(&wl);
                let rate = r
                    .for_window(ws)
                    .and_then(|w| w.ddc_miss_rate(cs))
                    .map(|p| pct(p.value()))
                    .unwrap_or_else(|| "-".to_string());
                row.push(rate);
            }
            t.row(row);
        }
    }
    t
}

/// Table 6: Multiscalar mis-speculation counts under blind speculation,
/// 4 vs 8 stages.
pub fn table6(h: &mut Harness) -> Table {
    let mut header = vec!["stages".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for stages in [4usize, 8] {
        let mut row = vec![stages.to_string()];
        for wl in int92_suite() {
            let r = h.run(&wl, stages, Policy::Always);
            row.push(fmt_count(r.misspeculations));
        }
        t.row(row);
    }
    t
}

/// Table 7: 8-stage Multiscalar DDC miss rates (%) vs DDC size.
pub fn table7(h: &mut Harness) -> Table {
    let mut header = vec!["CS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &cs in &DDC_SIZES_TABLE7 {
        let mut row = vec![cs.to_string()];
        for wl in int92_suite() {
            let r = h.run(&wl, 8, Policy::Always);
            let rate = r
                .ddc_miss_rate(cs)
                .map(|p| pct(p.value()))
                .unwrap_or_else(|| "-".to_string());
            row.push(rate);
        }
        t.row(row);
    }
    t
}

/// Table 8: dependence-prediction breakdown (%) for SYNC and ESYNC,
/// 4- and 8-stage configurations.
pub fn table8(h: &mut Harness) -> Table {
    let mut header = vec!["config".to_string(), "P/A".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for (stages, policy) in [(4, Policy::Sync), (8, Policy::Sync), (8, Policy::Esync)] {
        for (pi, (label, _)) in [("N/N", ()), ("N/Y", ()), ("Y/N", ()), ("Y/Y", ())]
            .iter()
            .enumerate()
        {
            let mut row = vec![
                if pi == 0 {
                    format!("{stages}-stage {policy}")
                } else {
                    String::new()
                },
                label.to_string(),
            ];
            for wl in int92_suite() {
                let r = h.run(&wl, stages, policy);
                let (predicted, actual) = match pi {
                    0 => (false, false),
                    1 => (false, true),
                    2 => (true, false),
                    _ => (true, true),
                };
                row.push(format!("{}", r.breakdown.percent(predicted, actual)));
            }
            t.row(row);
        }
    }
    t
}

/// Table 9: mis-speculations per committed load, blind vs the mechanism.
pub fn table9(h: &mut Harness) -> Table {
    let mut header = vec!["stages".to_string(), "policy".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for stages in [4usize, 8] {
        for policy in [Policy::Always, Policy::Esync] {
            let mut row = vec![stages.to_string(), policy.to_string()];
            for wl in int92_suite() {
                let r = h.run(&wl, stages, policy);
                row.push(format!("{:.4}", r.misspec_per_committed_load()));
            }
            t.row(row);
        }
    }
    t
}

/// Figure 5: IPC under NEVER, and speedups (%) of ALWAYS / WAIT / PSYNC
/// over NEVER, for 4- and 8-stage machines.
pub fn fig5(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "config",
        "benchmark",
        "NEVER IPC",
        "ALWAYS %",
        "WAIT %",
        "PSYNC %",
    ]);
    for stages in [4usize, 8] {
        for wl in int92_suite() {
            let never = h.run(&wl, stages, Policy::Never);
            let always = h.run(&wl, stages, Policy::Always);
            let wait = h.run(&wl, stages, Policy::Wait);
            let psync = h.run(&wl, stages, Policy::PSync);
            t.row([
                format!("{stages}-stage"),
                wl.name.to_string(),
                format!("{:.2}", never.ipc()),
                pct(always.speedup_over(&never)),
                pct(wait.speedup_over(&never)),
                pct(psync.speedup_over(&never)),
            ]);
        }
    }
    t
}

/// Figure 6: speedups (%) of SYNC / ESYNC / PSYNC over blind speculation
/// (ALWAYS) on the int92 suite.
pub fn fig6(h: &mut Harness) -> Table {
    let mut t = Table::new(["config", "benchmark", "SYNC %", "ESYNC %", "PSYNC %"]);
    for stages in [4usize, 8] {
        for wl in int92_suite() {
            let always = h.run(&wl, stages, Policy::Always);
            let sync = h.run(&wl, stages, Policy::Sync);
            let esync = h.run(&wl, stages, Policy::Esync);
            let psync = h.run(&wl, stages, Policy::PSync);
            t.row([
                format!("{stages}-stage"),
                wl.name.to_string(),
                pct(sync.speedup_over(&always)),
                pct(esync.speedup_over(&always)),
                pct(psync.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Figure 7: the SPEC95 suites on an 8-stage machine — ESYNC IPC and
/// speedups (%) of ESYNC and PSYNC over blind speculation.
pub fn fig7(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "suite", "ESYNC IPC", "ESYNC %", "PSYNC %"]);
    for wl in spec95_suite() {
        let always = h.run(&wl, 8, Policy::Always);
        let esync = h.run(&wl, 8, Policy::Esync);
        let psync = h.run(&wl, 8, Policy::PSync);
        let suite = match wl.suite {
            mds_workloads::Suite::Spec95Fp => "fp",
            _ => "int",
        };
        t.row([
            wl.name.to_string(),
            suite.to_string(),
            format!("{:.2}", esync.ipc()),
            pct(esync.speedup_over(&always)),
            pct(psync.speedup_over(&always)),
        ]);
    }
    t
}

/// Ablation: MDPT capacity sweep (ESYNC mis-speculations and speedup over
/// ALWAYS) on workloads with small and large dependence working sets.
pub fn ablate_mdpt(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "benchmark",
        "MDPT entries",
        "misspec",
        "speedup over ALWAYS %",
    ]);
    let interesting = ["compress", "gcc", "su2cor"];
    for wl in mds_workloads::all()
        .into_iter()
        .filter(|w| interesting.contains(&w.name))
    {
        let program = h.program(&wl).clone();
        let always = h.run(&wl, 8, Policy::Always);
        for entries in [16usize, 32, 64, 128, 256] {
            let mut config = MsConfig::paper(8, Policy::Esync);
            config.mdpt.capacity = entries;
            let r = Multiscalar::new(config).run(&program).expect("runs");
            t.row([
                wl.name.to_string(),
                entries.to_string(),
                fmt_count(r.misspeculations),
                pct(r.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Ablation: prediction-counter width/threshold sweep on the compress
/// workload (where the paper shows counter quality matters most).
pub fn ablate_counter(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "counter bits",
        "threshold",
        "misspec",
        "speedup over ALWAYS %",
    ]);
    let wl = mds_workloads::by_name("compress").expect("registered");
    let program = h.program(&wl).clone();
    let always = h.run(&wl, 8, Policy::Always);
    for (bits, threshold) in [(1u8, 1u16), (2, 2), (3, 3), (3, 5), (4, 8)] {
        let mut config = MsConfig::paper(8, Policy::Sync);
        config.mdpt.counter_bits = bits;
        config.mdpt.threshold = threshold;
        config.mdpt.initial = threshold;
        let r = Multiscalar::new(config).run(&program).expect("runs");
        t.row([
            bits.to_string(),
            threshold.to_string(),
            fmt_count(r.misspeculations),
            pct(r.speedup_over(&always)),
        ]);
    }
    t
}

/// Ablation: dependence-distance vs data-address instance tagging (the
/// two schemes §3 discusses; the paper evaluates only the first). Address
/// tagging identifies the producing store exactly, so it wins where
/// dependence distances vary (compress, gcc) at the hardware cost the
/// paper notes (an address CAM per sync entry).
pub fn ablate_tagging(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "tagging", "misspec", "speedup over ALWAYS %"]);
    for wl in int92_suite() {
        let program = h.program(&wl).clone();
        let always = h.run(&wl, 8, Policy::Always);
        for (label, tagging) in [
            ("distance", mds_core::TagScheme::DependenceDistance),
            ("address", mds_core::TagScheme::DataAddress),
        ] {
            let mut config = MsConfig::paper(8, Policy::Sync);
            config.tagging = tagging;
            let r = Multiscalar::new(config).run(&program).expect("runs");
            t.row([
                wl.name.to_string(),
                label.to_string(),
                fmt_count(r.misspeculations),
                pct(r.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Ablation: the same policies on the standalone superscalar OOO model —
/// the paper's "applicable beyond Multiscalar" claim (§6).
pub fn ablate_ooo(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "policy", "IPC", "misspec"]);
    for wl in int92_suite() {
        let program = h.program(&wl).clone();
        for policy in [Policy::Always, Policy::Sync, Policy::PSync] {
            let mut sim = OooSim::new(OooConfig {
                policy,
                ..Default::default()
            });
            Emulator::new(&program)
                .run_with(|d| sim.observe(d))
                .expect("runs");
            let r = sim.finish();
            t.row([
                wl.name.to_string(),
                policy.to_string(),
                format!("{:.2}", r.ipc()),
                fmt_count(r.misspeculations),
            ]);
        }
    }
    t
}

/// Every experiment in order: `(id, title, table)`.
pub fn all_experiments(h: &mut Harness) -> Vec<(&'static str, &'static str, Table)> {
    vec![
        (
            "table1",
            "Dynamic instruction count per benchmark",
            table1(h),
        ),
        (
            "table2",
            "Functional unit latencies (configuration)",
            table2(),
        ),
        (
            "table3",
            "Unrealistic OOO: mis-speculations vs window size",
            table3(h),
        ),
        (
            "table4",
            "Unrealistic OOO: static dependences covering 99.9% of mis-speculations",
            table4(h),
        ),
        (
            "table5",
            "Unrealistic OOO: DDC miss rate (%) vs window and DDC size",
            table5(h),
        ),
        (
            "table6",
            "Multiscalar: mis-speculations under blind speculation",
            table6(h),
        ),
        (
            "table7",
            "8-stage Multiscalar: DDC miss rate (%) vs DDC size",
            table7(h),
        ),
        ("table8", "Dependence prediction breakdown (%)", table8(h)),
        ("table9", "Mis-speculations per committed load", table9(h)),
        (
            "fig5",
            "Speedup (%) over NEVER: ALWAYS / WAIT / PSYNC",
            fig5(h),
        ),
        (
            "fig6",
            "Speedup (%) over ALWAYS: SYNC / ESYNC / PSYNC",
            fig6(h),
        ),
        (
            "fig7",
            "SPEC95 on 8 stages: ESYNC and PSYNC over ALWAYS",
            fig7(h),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_memoizes_runs() {
        let mut h = Harness::new(Scale::Tiny);
        let wl = mds_workloads::by_name("sc").unwrap();
        let a = h.run(&wl, 4, Policy::Always);
        let b = h.run(&wl, 4, Policy::Always);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(h.ms_runs.len(), 1);
    }

    #[test]
    fn table2_is_static() {
        let t = table2();
        assert_eq!(t.len(), 9);
        assert!(t.render().contains("divide"));
    }

    #[test]
    fn all_experiments_produce_populated_tables() {
        let mut h = Harness::new(Scale::Tiny);
        for (id, _title, table) in all_experiments(&mut h) {
            assert!(!table.is_empty(), "{id} produced an empty table");
            assert!(table.render().lines().count() >= 3, "{id} too short");
        }
    }

    #[test]
    fn key_shapes_hold_at_tiny_scale() {
        let mut h = Harness::new(Scale::Tiny);
        // Table 3 monotonicity: mis-speculations never shrink with WS.
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            let counts: Vec<u64> = WINDOW_SIZES
                .iter()
                .map(|&ws| r.for_window(ws).unwrap().misspeculations)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "{}: {counts:?}",
                wl.name
            );
        }
        // Figure 6 envelope: the oracle never loses to blind speculation.
        for wl in int92_suite() {
            let always = h.run(&wl, 8, Policy::Always);
            let psync = h.run(&wl, 8, Policy::PSync);
            assert!(
                psync.cycles <= always.cycles + always.cycles / 50,
                "{}: PSYNC {} vs ALWAYS {}",
                wl.name,
                psync.cycles,
                always.cycles
            );
        }
    }

    #[test]
    fn window_report_is_cached() {
        let mut h = Harness::new(Scale::Tiny);
        let wl = mds_workloads::by_name("compress").unwrap();
        let _ = h.window_report(&wl);
        let _ = h.window_report(&wl);
        assert_eq!(h.window_reports.len(), 1);
    }
}
