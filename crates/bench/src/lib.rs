//! The reproduction harness: one generator per table and figure of the
//! paper, shared by the `repro` binary and the integration tests.
//!
//! Everything is driven by a [`Harness`], which executes simulations
//! through the `mds-runner` experiment engine: the demands of each
//! experiment are declared up front ([`demands`]), batched into one
//! [`mds_runner::Grid`], and fanned out across worker threads with every
//! workload emulated exactly once behind the runner's shared trace
//! cache. Results are memoized in the harness, so the same Multiscalar
//! run feeds several tables and the full reproduction reuses it
//! everywhere.
//!
//! # Examples
//!
//! ```
//! use mds_bench::Harness;
//! use mds_workloads::Scale;
//!
//! let mut h = Harness::new(Scale::Tiny);
//! let t3 = mds_bench::table3(&mut h);
//! assert!(t3.render().contains("compress"));
//! // Tables 3-5 share one window analysis per workload, and every
//! // simulation over a workload shares a single emulated trace.
//! assert_eq!(h.trace_emulations(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mds_core::Policy;
use mds_emu::TraceSummary;
use mds_harness::json::Json;
use mds_multiscalar::{FuLatencies, MsConfig, MsResult};
use mds_ooo::{OooConfig, OooResult, WindowConfig, WindowReport};
use mds_runner::{Grid, Job, JobKind, JobOutput, RunStats, Runner};
use mds_sim::table::{fmt_abbrev, fmt_count, Table};
use mds_workloads::{by_name, int92_suite, spec95_suite, Scale, Workload};
use std::collections::HashMap;
use std::path::PathBuf;

pub mod grid;

/// The DDC sizes measured in tables 5 and 7.
pub const DDC_SIZES_TABLE5: [usize; 3] = [32, 128, 512];
/// The DDC sizes swept in table 7.
pub const DDC_SIZES_TABLE7: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];
/// The window sizes of the unrealistic-OOO studies (tables 3–5).
pub const WINDOW_SIZES: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Workloads swept by the MDPT-capacity ablation (small and large
/// dependence working sets).
const MDPT_SWEEP_WORKLOADS: [&str; 3] = ["compress", "gcc", "su2cor"];
/// MDPT capacities swept by the MDPT ablation.
const MDPT_SWEEP_ENTRIES: [usize; 5] = [16, 32, 64, 128, 256];
/// `(counter bits, threshold)` points of the counter ablation.
const COUNTER_SWEEP: [(u8, u16); 5] = [(1, 1), (2, 2), (3, 3), (3, 5), (4, 8)];
/// Policies compared on the standalone superscalar model.
const OOO_POLICIES: [Policy; 3] = [Policy::Always, Policy::Sync, Policy::PSync];

/// The Multiscalar configuration every paper experiment uses for
/// `(stages, policy)`. ALWAYS runs carry the table 7 DDC sweep so
/// mis-speculation locality comes for free.
pub fn ms_config_for(stages: usize, policy: Policy) -> MsConfig {
    let mut config = MsConfig::paper(stages, policy);
    if policy == Policy::Always {
        config = config.with_ddc_sizes(&DDC_SIZES_TABLE7);
    }
    config
}

/// The window-analysis configuration of tables 3–5.
pub fn window_config() -> WindowConfig {
    WindowConfig {
        window_sizes: WINDOW_SIZES.to_vec(),
        ddc_sizes: DDC_SIZES_TABLE5.to_vec(),
    }
}

fn mdpt_sweep_config(entries: usize) -> MsConfig {
    let mut config = MsConfig::paper(8, Policy::Esync);
    config.mdpt.capacity = entries;
    config
}

fn counter_sweep_config(bits: u8, threshold: u16) -> MsConfig {
    let mut config = MsConfig::paper(8, Policy::Sync);
    config.mdpt.counter_bits = bits;
    config.mdpt.threshold = threshold;
    config.mdpt.initial = threshold;
    config
}

fn tagging_sweep_config(tagging: mds_core::TagScheme) -> MsConfig {
    let mut config = MsConfig::paper(8, Policy::Sync);
    config.tagging = tagging;
    config
}

fn ooo_sweep_config(policy: Policy) -> OooConfig {
    OooConfig {
        policy,
        ..Default::default()
    }
}

/// One simulation an experiment needs: the declarative unit [`Harness`]
/// batches into runner grids.
// An experiment declares at most a few hundred demands, so the variant
// size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Demand {
    /// Trace aggregate counts for a workload (table 1).
    Summary(Workload),
    /// The unrealistic-OOO window analysis (tables 3–5).
    Window(Workload),
    /// A paper-configuration Multiscalar run (`ms_config_for`).
    Ms(Workload, usize, Policy),
    /// A Multiscalar run with a custom configuration, keyed by a stable
    /// id (the ablation sweeps).
    CustomMs(String, Workload, MsConfig),
    /// A standalone superscalar run, keyed by a stable id.
    Ooo(String, Workload, OooConfig),
}

impl Demand {
    /// The grid job id for this demand; stable and unique per demand.
    fn id(&self) -> String {
        match self {
            Demand::Summary(wl) => format!("summary/{}", wl.name),
            Demand::Window(wl) => format!("window/{}", wl.name),
            Demand::Ms(wl, stages, policy) => format!("ms/{}/{stages}/{policy}", wl.name),
            Demand::CustomMs(id, _, _) => format!("custom/{id}"),
            Demand::Ooo(id, _, _) => format!("ooo/{id}"),
        }
    }

    fn workload(&self) -> &Workload {
        match self {
            Demand::Summary(wl)
            | Demand::Window(wl)
            | Demand::Ms(wl, _, _)
            | Demand::CustomMs(_, wl, _)
            | Demand::Ooo(_, wl, _) => wl,
        }
    }

    fn kind(&self) -> JobKind {
        match self {
            Demand::Summary(_) => JobKind::Summary,
            Demand::Window(_) => JobKind::Window(window_config()),
            Demand::Ms(_, stages, policy) => JobKind::Multiscalar(ms_config_for(*stages, *policy)),
            Demand::CustomMs(_, _, config) => JobKind::Multiscalar(config.clone()),
            Demand::Ooo(_, _, config) => JobKind::Superscalar(*config),
        }
    }
}

/// Executes experiments through the runner and memoizes every result.
pub struct Harness {
    scale: Scale,
    runner: Runner,
    trace_emulations: u64,
    trace_reuses: u64,
    run_stats: Vec<RunStats>,
    summaries: HashMap<&'static str, TraceSummary>,
    ms_runs: HashMap<(&'static str, usize, Policy), MsResult>,
    custom_runs: HashMap<String, MsResult>,
    ooo_runs: HashMap<String, OooResult>,
    window_reports: HashMap<&'static str, WindowReport>,
}

impl Harness {
    /// A harness at the given workload scale, sized from `MDS_JOBS` or the
    /// machine's available parallelism.
    pub fn new(scale: Scale) -> Self {
        Harness::with_runner(scale, Runner::from_env(None))
    }

    /// A harness with an explicit runner (e.g. `--jobs N`).
    pub fn with_runner(scale: Scale, runner: Runner) -> Self {
        Harness {
            scale,
            runner,
            trace_emulations: 0,
            trace_reuses: 0,
            run_stats: Vec::new(),
            summaries: HashMap::new(),
            ms_runs: HashMap::new(),
            custom_runs: HashMap::new(),
            ooo_runs: HashMap::new(),
            window_reports: HashMap::new(),
        }
    }

    /// The scale this harness runs at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Worker threads the underlying runner uses.
    pub fn workers(&self) -> usize {
        self.runner.workers()
    }

    /// Total emulations performed so far (runner trace-cache misses).
    pub fn trace_emulations(&self) -> u64 {
        self.trace_emulations
    }

    /// Total trace-cache reuses so far (simulations that replayed an
    /// already-captured trace instead of re-emulating).
    pub fn trace_reuses(&self) -> u64 {
        self.trace_reuses
    }

    /// Observability for every grid this harness has run, in order —
    /// wall time, cache traffic, and per-worker utilization.
    pub fn run_stats(&self) -> &[RunStats] {
        &self.run_stats
    }

    fn is_satisfied(&self, demand: &Demand) -> bool {
        match demand {
            Demand::Summary(wl) => self.summaries.contains_key(wl.name),
            Demand::Window(wl) => self.window_reports.contains_key(wl.name),
            Demand::Ms(wl, stages, policy) => {
                self.ms_runs.contains_key(&(wl.name, *stages, *policy))
            }
            Demand::CustomMs(id, _, _) => self.custom_runs.contains_key(id),
            Demand::Ooo(id, _, _) => self.ooo_runs.contains_key(id),
        }
    }

    /// Runs every not-yet-memoized demand as one parallel grid.
    ///
    /// Batching matters twice over: jobs fan out across workers, and all
    /// demands on the same workload share a single emulated trace.
    pub fn prefetch(&mut self, demands: &[Demand]) {
        let mut grid = Grid::new(self.scale);
        let mut pending: Vec<Demand> = Vec::new();
        let mut queued: std::collections::HashSet<String> = std::collections::HashSet::new();
        for demand in demands {
            if self.is_satisfied(demand) || !queued.insert(demand.id()) {
                continue;
            }
            grid.push(Job {
                id: demand.id(),
                workload: *demand.workload(),
                scale: self.scale,
                kind: demand.kind(),
            });
            pending.push(demand.clone());
        }
        if grid.is_empty() {
            return;
        }
        let outcome = self.runner.run(&grid);
        self.trace_emulations += outcome.stats.cache_misses;
        self.trace_reuses += outcome.stats.cache_hits;
        self.run_stats.push(outcome.stats.clone());
        for (demand, result) in pending.into_iter().zip(outcome.results) {
            match (demand, result.output) {
                (Demand::Summary(wl), JobOutput::Summary(s)) => {
                    self.summaries.insert(wl.name, s);
                }
                (Demand::Window(wl), JobOutput::Window(r)) => {
                    self.window_reports.insert(wl.name, r);
                }
                (Demand::Ms(wl, stages, policy), JobOutput::Multiscalar(r)) => {
                    self.ms_runs.insert((wl.name, stages, policy), r);
                }
                (Demand::CustomMs(id, _, _), JobOutput::Multiscalar(r)) => {
                    self.custom_runs.insert(id, r);
                }
                (Demand::Ooo(id, _, _), JobOutput::Superscalar(r)) => {
                    self.ooo_runs.insert(id, r);
                }
                (demand, _) => unreachable!("job output mismatches demand {}", demand.id()),
            }
        }
    }

    /// Installs an externally computed output for `demand`, as if
    /// [`Harness::prefetch`] had run it locally — the gather half of
    /// scatter-gather grid execution (see [`grid`]).
    ///
    /// Returns `false` (and stores nothing) if the output kind does not
    /// match the demand. Overwrites any previous result for the demand.
    pub fn insert(&mut self, demand: &Demand, output: JobOutput) -> bool {
        match (demand, output) {
            (Demand::Summary(wl), JobOutput::Summary(s)) => {
                self.summaries.insert(wl.name, s);
            }
            (Demand::Window(wl), JobOutput::Window(r)) => {
                self.window_reports.insert(wl.name, r);
            }
            (Demand::Ms(wl, stages, policy), JobOutput::Multiscalar(r)) => {
                self.ms_runs.insert((wl.name, *stages, *policy), r);
            }
            (Demand::CustomMs(id, _, _), JobOutput::Multiscalar(r)) => {
                self.custom_runs.insert(id.clone(), r);
            }
            (Demand::Ooo(id, _, _), JobOutput::Superscalar(r)) => {
                self.ooo_runs.insert(id.clone(), r);
            }
            _ => return false,
        }
        true
    }

    /// A memoized paper-configuration Multiscalar run.
    pub fn run(&mut self, wl: &Workload, stages: usize, policy: Policy) -> MsResult {
        let key = (wl.name, stages, policy);
        if !self.ms_runs.contains_key(&key) {
            self.prefetch(&[Demand::Ms(*wl, stages, policy)]);
        }
        self.ms_runs[&key].clone()
    }

    /// A memoized Multiscalar run with a custom configuration, keyed by a
    /// caller-chosen stable id (the ablation sweeps).
    pub fn run_custom(&mut self, id: &str, wl: &Workload, config: MsConfig) -> MsResult {
        if !self.custom_runs.contains_key(id) {
            self.prefetch(&[Demand::CustomMs(id.to_string(), *wl, config)]);
        }
        self.custom_runs[id].clone()
    }

    /// A memoized standalone-superscalar run, keyed by a stable id.
    pub fn run_ooo(&mut self, id: &str, wl: &Workload, config: OooConfig) -> OooResult {
        if !self.ooo_runs.contains_key(id) {
            self.prefetch(&[Demand::Ooo(id.to_string(), *wl, config)]);
        }
        self.ooo_runs[id].clone()
    }

    /// A memoized unrealistic-OOO window analysis (tables 3–5).
    pub fn window_report(&mut self, wl: &Workload) -> WindowReport {
        if !self.window_reports.contains_key(wl.name) {
            self.prefetch(&[Demand::Window(*wl)]);
        }
        self.window_reports[wl.name].clone()
    }

    /// Memoized trace aggregate counts for a workload (table 1).
    pub fn summary(&mut self, wl: &Workload) -> TraceSummary {
        if !self.summaries.contains_key(wl.name) {
            self.prefetch(&[Demand::Summary(*wl)]);
        }
        self.summaries[wl.name]
    }
}

fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Table 1: committed dynamic instruction counts per benchmark (plus the
/// average task size, which the paper discusses per benchmark in §5.5).
pub fn table1(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "benchmark",
        "suite",
        "committed instructions",
        "avg task size",
    ]);
    for wl in mds_workloads::all() {
        let sum = h.summary(&wl);
        let suite = wl.suite.name();
        let task_size = if sum.tasks == 0 {
            "-".to_string()
        } else {
            format!("{:.0}", sum.instructions as f64 / sum.tasks as f64)
        };
        t.row([
            wl.name.to_string(),
            suite.to_string(),
            fmt_abbrev(sum.instructions),
            task_size,
        ]);
    }
    t
}

/// Table 2: functional-unit latencies (configuration, not measurement).
pub fn table2() -> Table {
    let mut t = Table::new(["unit", "operation", "latency (cycles)"]);
    for (unit, op, lat) in FuLatencies::default().table_rows() {
        t.row([unit.to_string(), op.to_string(), lat.to_string()]);
    }
    t
}

/// Table 3: unrealistic OOO — dynamic mis-speculations vs window size.
pub fn table3(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &WINDOW_SIZES {
        let mut row = vec![ws.to_string()];
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            row.push(fmt_abbrev(
                r.for_window(ws).expect("configured ws").misspeculations,
            ));
        }
        t.row(row);
    }
    t
}

/// Table 4: static dependences responsible for 99.9 % of
/// mis-speculations, per window size.
pub fn table4(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &WINDOW_SIZES {
        let mut row = vec![ws.to_string()];
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            row.push(
                r.for_window(ws)
                    .expect("configured ws")
                    .edges_covering(0.999)
                    .to_string(),
            );
        }
        t.row(row);
    }
    t
}

/// Table 5: DDC miss rate (%) as a function of window size and DDC size.
pub fn table5(h: &mut Harness) -> Table {
    let mut header = vec!["WS".to_string(), "CS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &ws in &[32u32, 128, 512] {
        for &cs in &DDC_SIZES_TABLE5 {
            let mut row = vec![ws.to_string(), cs.to_string()];
            for wl in int92_suite() {
                let r = h.window_report(&wl);
                let rate = r
                    .for_window(ws)
                    .and_then(|w| w.ddc_miss_rate(cs))
                    .map(|p| pct(p.value()))
                    .unwrap_or_else(|| "-".to_string());
                row.push(rate);
            }
            t.row(row);
        }
    }
    t
}

/// Table 6: Multiscalar mis-speculation counts under blind speculation,
/// 4 vs 8 stages.
pub fn table6(h: &mut Harness) -> Table {
    let mut header = vec!["stages".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for stages in [4usize, 8] {
        let mut row = vec![stages.to_string()];
        for wl in int92_suite() {
            let r = h.run(&wl, stages, Policy::Always);
            row.push(fmt_count(r.misspeculations));
        }
        t.row(row);
    }
    t
}

/// Table 7: 8-stage Multiscalar DDC miss rates (%) vs DDC size.
pub fn table7(h: &mut Harness) -> Table {
    let mut header = vec!["CS".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for &cs in &DDC_SIZES_TABLE7 {
        let mut row = vec![cs.to_string()];
        for wl in int92_suite() {
            let r = h.run(&wl, 8, Policy::Always);
            let rate = r
                .ddc_miss_rate(cs)
                .map(|p| pct(p.value()))
                .unwrap_or_else(|| "-".to_string());
            row.push(rate);
        }
        t.row(row);
    }
    t
}

/// Table 8: dependence-prediction breakdown (%) for SYNC and ESYNC,
/// 4- and 8-stage configurations.
pub fn table8(h: &mut Harness) -> Table {
    let mut header = vec!["config".to_string(), "P/A".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for (stages, policy) in [(4, Policy::Sync), (8, Policy::Sync), (8, Policy::Esync)] {
        for (pi, (label, _)) in [("N/N", ()), ("N/Y", ()), ("Y/N", ()), ("Y/Y", ())]
            .iter()
            .enumerate()
        {
            let mut row = vec![
                if pi == 0 {
                    format!("{stages}-stage {policy}")
                } else {
                    String::new()
                },
                label.to_string(),
            ];
            for wl in int92_suite() {
                let r = h.run(&wl, stages, policy);
                let (predicted, actual) = match pi {
                    0 => (false, false),
                    1 => (false, true),
                    2 => (true, false),
                    _ => (true, true),
                };
                row.push(format!("{}", r.breakdown.percent(predicted, actual)));
            }
            t.row(row);
        }
    }
    t
}

/// Table 9: mis-speculations per committed load, blind vs the mechanism.
pub fn table9(h: &mut Harness) -> Table {
    let mut header = vec!["stages".to_string(), "policy".to_string()];
    header.extend(int92_suite().iter().map(|w| w.name.to_string()));
    let mut t = Table::new(header);
    for stages in [4usize, 8] {
        for policy in [Policy::Always, Policy::Esync] {
            let mut row = vec![stages.to_string(), policy.to_string()];
            for wl in int92_suite() {
                let r = h.run(&wl, stages, policy);
                row.push(format!("{:.4}", r.misspec_per_committed_load()));
            }
            t.row(row);
        }
    }
    t
}

/// Figure 5: IPC under NEVER, and speedups (%) of ALWAYS / WAIT / PSYNC
/// over NEVER, for 4- and 8-stage machines.
pub fn fig5(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "config",
        "benchmark",
        "NEVER IPC",
        "ALWAYS %",
        "WAIT %",
        "PSYNC %",
    ]);
    for stages in [4usize, 8] {
        for wl in int92_suite() {
            let never = h.run(&wl, stages, Policy::Never);
            let always = h.run(&wl, stages, Policy::Always);
            let wait = h.run(&wl, stages, Policy::Wait);
            let psync = h.run(&wl, stages, Policy::PSync);
            t.row([
                format!("{stages}-stage"),
                wl.name.to_string(),
                format!("{:.2}", never.ipc()),
                pct(always.speedup_over(&never)),
                pct(wait.speedup_over(&never)),
                pct(psync.speedup_over(&never)),
            ]);
        }
    }
    t
}

/// Figure 6: speedups (%) of SYNC / ESYNC / PSYNC over blind speculation
/// (ALWAYS) on the int92 suite.
pub fn fig6(h: &mut Harness) -> Table {
    let mut t = Table::new(["config", "benchmark", "SYNC %", "ESYNC %", "PSYNC %"]);
    for stages in [4usize, 8] {
        for wl in int92_suite() {
            let always = h.run(&wl, stages, Policy::Always);
            let sync = h.run(&wl, stages, Policy::Sync);
            let esync = h.run(&wl, stages, Policy::Esync);
            let psync = h.run(&wl, stages, Policy::PSync);
            t.row([
                format!("{stages}-stage"),
                wl.name.to_string(),
                pct(sync.speedup_over(&always)),
                pct(esync.speedup_over(&always)),
                pct(psync.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Figure 7: the SPEC95 suites on an 8-stage machine — ESYNC IPC and
/// speedups (%) of ESYNC and PSYNC over blind speculation.
pub fn fig7(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "suite", "ESYNC IPC", "ESYNC %", "PSYNC %"]);
    for wl in spec95_suite() {
        let always = h.run(&wl, 8, Policy::Always);
        let esync = h.run(&wl, 8, Policy::Esync);
        let psync = h.run(&wl, 8, Policy::PSync);
        let suite = match wl.suite {
            mds_workloads::Suite::Spec95Fp => "fp",
            _ => "int",
        };
        t.row([
            wl.name.to_string(),
            suite.to_string(),
            format!("{:.2}", esync.ipc()),
            pct(esync.speedup_over(&always)),
            pct(psync.speedup_over(&always)),
        ]);
    }
    t
}

/// Ablation: MDPT capacity sweep (ESYNC mis-speculations and speedup over
/// ALWAYS) on workloads with small and large dependence working sets.
pub fn ablate_mdpt(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "benchmark",
        "MDPT entries",
        "misspec",
        "speedup over ALWAYS %",
    ]);
    for wl in mds_workloads::all()
        .into_iter()
        .filter(|w| MDPT_SWEEP_WORKLOADS.contains(&w.name))
    {
        let always = h.run(&wl, 8, Policy::Always);
        for entries in MDPT_SWEEP_ENTRIES {
            let id = format!("mdpt/{}/{entries}", wl.name);
            let r = h.run_custom(&id, &wl, mdpt_sweep_config(entries));
            t.row([
                wl.name.to_string(),
                entries.to_string(),
                fmt_count(r.misspeculations),
                pct(r.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Ablation: prediction-counter width/threshold sweep on the compress
/// workload (where the paper shows counter quality matters most).
pub fn ablate_counter(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "counter bits",
        "threshold",
        "misspec",
        "speedup over ALWAYS %",
    ]);
    let wl = by_name("compress").expect("registered");
    let always = h.run(&wl, 8, Policy::Always);
    for (bits, threshold) in COUNTER_SWEEP {
        let id = format!("counter/{bits}/{threshold}");
        let r = h.run_custom(&id, &wl, counter_sweep_config(bits, threshold));
        t.row([
            bits.to_string(),
            threshold.to_string(),
            fmt_count(r.misspeculations),
            pct(r.speedup_over(&always)),
        ]);
    }
    t
}

/// Ablation: dependence-distance vs data-address instance tagging (the
/// two schemes §3 discusses; the paper evaluates only the first). Address
/// tagging identifies the producing store exactly, so it wins where
/// dependence distances vary (compress, gcc) at the hardware cost the
/// paper notes (an address CAM per sync entry).
pub fn ablate_tagging(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "tagging", "misspec", "speedup over ALWAYS %"]);
    for wl in int92_suite() {
        let always = h.run(&wl, 8, Policy::Always);
        for (label, tagging) in [
            ("distance", mds_core::TagScheme::DependenceDistance),
            ("address", mds_core::TagScheme::DataAddress),
        ] {
            let id = format!("tagging/{}/{label}", wl.name);
            let r = h.run_custom(&id, &wl, tagging_sweep_config(tagging));
            t.row([
                wl.name.to_string(),
                label.to_string(),
                fmt_count(r.misspeculations),
                pct(r.speedup_over(&always)),
            ]);
        }
    }
    t
}

/// Ablation: the same policies on the standalone superscalar OOO model —
/// the paper's "applicable beyond Multiscalar" claim (§6).
pub fn ablate_ooo(h: &mut Harness) -> Table {
    let mut t = Table::new(["benchmark", "policy", "IPC", "misspec"]);
    for wl in int92_suite() {
        for policy in OOO_POLICIES {
            let id = format!("{}/{policy}", wl.name);
            let r = h.run_ooo(&id, &wl, ooo_sweep_config(policy));
            t.row([
                wl.name.to_string(),
                policy.to_string(),
                format!("{:.2}", r.ipc()),
                fmt_count(r.misspeculations),
            ]);
        }
    }
    t
}

/// The experiment over generated (WDL) workloads: trace shape plus the
/// paper's headline policy comparison for every registered member.
///
/// Not part of [`EXPERIMENT_IDS`]: its contents depend on which specs
/// the caller registered, so it is opt-in (`repro --wdl <file>`) and
/// never pinned by the identity gate.
pub fn wdl_table(h: &mut Harness) -> Table {
    let mut t = Table::new([
        "workload",
        "tasks",
        "insts",
        "ALWAYS ms/load",
        "ESYNC %",
        "PSYNC %",
    ]);
    for wl in mds_workloads::generated() {
        let sum = h.summary(&wl);
        let always = h.run(&wl, 8, Policy::Always);
        let esync = h.run(&wl, 8, Policy::Esync);
        let psync = h.run(&wl, 8, Policy::PSync);
        t.row([
            wl.name.to_string(),
            fmt_count(sum.tasks),
            fmt_abbrev(sum.instructions),
            format!("{:.4}", always.misspec_per_committed_load()),
            pct(esync.speedup_over(&always)),
            pct(psync.speedup_over(&always)),
        ]);
    }
    t
}

/// The demands of [`wdl_table`] over the currently registered generated
/// workloads.
pub fn wdl_demands() -> Vec<Demand> {
    let mut v = Vec::new();
    for wl in mds_workloads::generated() {
        v.push(Demand::Summary(wl));
        for policy in [Policy::Always, Policy::Esync, Policy::PSync] {
            v.push(Demand::Ms(wl, 8, policy));
        }
    }
    v
}

/// Every experiment id `repro` accepts, in canonical emission order.
pub const EXPERIMENT_IDS: [&str; 16] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "fig5",
    "fig6",
    "fig7",
    "ablate-mdpt",
    "ablate-tagging",
    "ablate-counter",
    "ablate-ooo",
];

/// The experiment ids `repro all` expands to (the paper's tables and
/// figures; ablations are separate).
pub const PAPER_IDS: [&str; 12] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "fig5", "fig6", "fig7",
];

/// The experiment ids `repro ablations` expands to.
pub const ABLATION_IDS: [&str; 4] = [
    "ablate-mdpt",
    "ablate-tagging",
    "ablate-counter",
    "ablate-ooo",
];

/// One-line title for an experiment id.
pub fn experiment_title(id: &str) -> Option<&'static str> {
    Some(match id {
        "table1" => "Dynamic instruction count per benchmark",
        "table2" => "Functional unit latencies (configuration)",
        "table3" => "Unrealistic OOO: mis-speculations vs window size",
        "table4" => "Unrealistic OOO: static dependences covering 99.9% of mis-speculations",
        "table5" => "Unrealistic OOO: DDC miss rate (%) vs window and DDC size",
        "table6" => "Multiscalar: mis-speculations under blind speculation",
        "table7" => "8-stage Multiscalar: DDC miss rate (%) vs DDC size",
        "table8" => "Dependence prediction breakdown (%)",
        "table9" => "Mis-speculations per committed load",
        "fig5" => "Speedup (%) over NEVER: ALWAYS / WAIT / PSYNC",
        "fig6" => "Speedup (%) over ALWAYS: SYNC / ESYNC / PSYNC",
        "fig7" => "SPEC95 on 8 stages: ESYNC and PSYNC over ALWAYS",
        "ablate-mdpt" => "MDPT capacity sweep",
        "ablate-tagging" => "Distance vs address instance tags",
        "ablate-counter" => "Prediction counter sweep",
        "ablate-ooo" => "Policies on the superscalar model",
        "wdl" => "Generated workloads: trace shape and policy orderings",
        _ => return None,
    })
}

/// Every simulation `id` needs, for batching into one parallel grid.
/// Unknown ids yield an empty list.
pub fn demands(id: &str) -> Vec<Demand> {
    let ms = |suite: Vec<Workload>, stages: &[usize], policies: &[Policy]| -> Vec<Demand> {
        let mut v = Vec::new();
        for wl in &suite {
            for &s in stages {
                for &p in policies {
                    v.push(Demand::Ms(*wl, s, p));
                }
            }
        }
        v
    };
    match id {
        "table1" => mds_workloads::all()
            .into_iter()
            .map(Demand::Summary)
            .collect(),
        "table2" => Vec::new(),
        "table3" | "table4" | "table5" => int92_suite().into_iter().map(Demand::Window).collect(),
        "table6" => ms(int92_suite(), &[4, 8], &[Policy::Always]),
        "table7" => ms(int92_suite(), &[8], &[Policy::Always]),
        "table8" => {
            let mut v = ms(int92_suite(), &[4, 8], &[Policy::Sync]);
            v.extend(ms(int92_suite(), &[8], &[Policy::Esync]));
            v
        }
        "table9" => ms(int92_suite(), &[4, 8], &[Policy::Always, Policy::Esync]),
        "fig5" => ms(
            int92_suite(),
            &[4, 8],
            &[Policy::Never, Policy::Always, Policy::Wait, Policy::PSync],
        ),
        "fig6" => ms(
            int92_suite(),
            &[4, 8],
            &[Policy::Always, Policy::Sync, Policy::Esync, Policy::PSync],
        ),
        "fig7" => ms(
            spec95_suite(),
            &[8],
            &[Policy::Always, Policy::Esync, Policy::PSync],
        ),
        "ablate-mdpt" => {
            let mut v = Vec::new();
            for wl in mds_workloads::all()
                .into_iter()
                .filter(|w| MDPT_SWEEP_WORKLOADS.contains(&w.name))
            {
                v.push(Demand::Ms(wl, 8, Policy::Always));
                for entries in MDPT_SWEEP_ENTRIES {
                    v.push(Demand::CustomMs(
                        format!("mdpt/{}/{entries}", wl.name),
                        wl,
                        mdpt_sweep_config(entries),
                    ));
                }
            }
            v
        }
        "ablate-counter" => {
            let wl = by_name("compress").expect("registered");
            let mut v = vec![Demand::Ms(wl, 8, Policy::Always)];
            for (bits, threshold) in COUNTER_SWEEP {
                v.push(Demand::CustomMs(
                    format!("counter/{bits}/{threshold}"),
                    wl,
                    counter_sweep_config(bits, threshold),
                ));
            }
            v
        }
        "ablate-tagging" => {
            let mut v = Vec::new();
            for wl in int92_suite() {
                v.push(Demand::Ms(wl, 8, Policy::Always));
                for (label, tagging) in [
                    ("distance", mds_core::TagScheme::DependenceDistance),
                    ("address", mds_core::TagScheme::DataAddress),
                ] {
                    v.push(Demand::CustomMs(
                        format!("tagging/{}/{label}", wl.name),
                        wl,
                        tagging_sweep_config(tagging),
                    ));
                }
            }
            v
        }
        "ablate-ooo" => {
            let mut v = Vec::new();
            for wl in int92_suite() {
                for policy in OOO_POLICIES {
                    v.push(Demand::Ooo(
                        format!("{}/{policy}", wl.name),
                        wl,
                        ooo_sweep_config(policy),
                    ));
                }
            }
            v
        }
        "wdl" => wdl_demands(),
        _ => Vec::new(),
    }
}

/// Generates one experiment: prefetches its demands (as a parallel grid)
/// and builds its table. `None` for unknown ids.
pub fn experiment(h: &mut Harness, id: &str) -> Option<Table> {
    experiment_title(id)?;
    h.prefetch(&demands(id));
    Some(match id {
        "table1" => table1(h),
        "table2" => table2(),
        "table3" => table3(h),
        "table4" => table4(h),
        "table5" => table5(h),
        "table6" => table6(h),
        "table7" => table7(h),
        "table8" => table8(h),
        "table9" => table9(h),
        "fig5" => fig5(h),
        "fig6" => fig6(h),
        "fig7" => fig7(h),
        "ablate-mdpt" => ablate_mdpt(h),
        "ablate-tagging" => ablate_tagging(h),
        "ablate-counter" => ablate_counter(h),
        "ablate-ooo" => ablate_ooo(h),
        "wdl" => wdl_table(h),
        _ => unreachable!("title resolved above"),
    })
}

/// Every paper experiment in order: `(id, title, table)`. The union of
/// all demands is prefetched as one grid before any table is built, so a
/// full reproduction emulates each workload exactly once and fans every
/// simulation out across the runner's workers.
pub fn all_experiments(h: &mut Harness) -> Vec<(&'static str, &'static str, Table)> {
    let union: Vec<Demand> = PAPER_IDS.iter().flat_map(|id| demands(id)).collect();
    h.prefetch(&union);
    PAPER_IDS
        .iter()
        .map(|&id| {
            (
                id,
                experiment_title(id).expect("registered id"),
                experiment(h, id).expect("registered id"),
            )
        })
        .collect()
}

/// The deterministic JSON form of a rendered table: header plus rows,
/// all strings, in insertion order.
pub fn table_json(table: &Table) -> Json {
    Json::object()
        .field(
            "header",
            Json::Array(
                table
                    .header()
                    .iter()
                    .map(|c| Json::from(c.as_str()))
                    .collect(),
            ),
        )
        .field(
            "rows",
            Json::Array(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Array(row.iter().map(|c| Json::from(c.as_str())).collect()))
                    .collect(),
            ),
        )
}

/// The canonical lowercase name of a scale, as emitted in result
/// documents and accepted by `--scale` / serving requests.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Parses a scale name back from its canonical lowercase form.
pub fn scale_by_name(name: &str) -> Option<Scale> {
    match name {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// The **output epoch** of this build: a hash over the sources of every
/// crate that feeds canonical result bytes (computed by this crate's
/// build script). Two binaries with the same epoch produce identical
/// result documents for every static `(experiment, scale)` key; a
/// simulator change moves the epoch, which is how the durable result
/// tier (`mds-store`) invalidates persisted entries instead of serving
/// bytes the current code would not produce.
pub fn output_epoch() -> u64 {
    // The build script emits a decimal u64; a parse failure would mean
    // the build script itself is broken, which no runtime handling can
    // paper over.
    env!("MDS_OUTPUT_EPOCH")
        .parse()
        .expect("MDS_OUTPUT_EPOCH is a decimal u64")
}

/// The canonical result document for one experiment — exactly what
/// `repro --json` writes and what `mds-serve` returns, so the two
/// surfaces are byte-identical by construction. The document is a pure
/// function of the simulation results — no timings — so parallel and
/// serial runs produce identical bytes.
pub fn results_doc(id: &str, title: &str, scale: Scale, table: &Table) -> Json {
    Json::object()
        .field("experiment", id)
        .field("title", title)
        .field("scale", scale_name(scale))
        .field("table", table_json(table))
}

/// Serializes one experiment's table to `RESULTS_<id>.json` in
/// `MDS_RESULTS_DIR` (default: the workspace root, like `BENCH_*.json`)
/// and returns the path.
pub fn write_results(
    id: &str,
    title: &str,
    scale: Scale,
    table: &Table,
) -> std::io::Result<PathBuf> {
    let dir = std::env::var_os("MDS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(mds_harness::bench::report_dir);
    let path = dir.join(format!("RESULTS_{id}.json"));
    std::fs::write(&path, results_doc(id, title, scale, table).pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_memoizes_runs() {
        let mut h = Harness::new(Scale::Tiny);
        let wl = by_name("sc").unwrap();
        let a = h.run(&wl, 4, Policy::Always);
        let b = h.run(&wl, 4, Policy::Always);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(h.ms_runs.len(), 1);
        assert_eq!(h.trace_emulations(), 1);
    }

    #[test]
    fn table2_is_static() {
        let t = table2();
        assert_eq!(t.len(), 9);
        assert!(t.render().contains("divide"));
    }

    #[test]
    fn all_experiments_produce_populated_tables() {
        let mut h = Harness::new(Scale::Tiny);
        for (id, _title, table) in all_experiments(&mut h) {
            assert!(!table.is_empty(), "{id} produced an empty table");
            assert!(table.render().lines().count() >= 3, "{id} too short");
        }
        // The union prefetch emulated each of the 23 workloads exactly
        // once; everything else replayed cached traces.
        assert_eq!(h.trace_emulations(), 23);
        assert!(h.trace_reuses() > 0);
    }

    #[test]
    fn demands_cover_every_experiment() {
        // Prefetching an experiment's declared demands must fully satisfy
        // its table: building it afterwards may not simulate anything new.
        for id in EXPERIMENT_IDS {
            let mut h = Harness::new(Scale::Tiny);
            h.prefetch(&demands(id));
            let emulations = h.trace_emulations();
            let reuses = h.trace_reuses();
            let table = experiment(&mut h, id).expect("registered id");
            assert!(!table.is_empty() || id == "table2", "{id} empty");
            assert_eq!(h.trace_emulations(), emulations, "{id} under-declared");
            assert_eq!(h.trace_reuses(), reuses, "{id} under-declared");
        }
    }

    #[test]
    fn key_shapes_hold_at_tiny_scale() {
        let mut h = Harness::new(Scale::Tiny);
        // Table 3 monotonicity: mis-speculations never shrink with WS.
        for wl in int92_suite() {
            let r = h.window_report(&wl);
            let counts: Vec<u64> = WINDOW_SIZES
                .iter()
                .map(|&ws| r.for_window(ws).unwrap().misspeculations)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "{}: {counts:?}",
                wl.name
            );
        }
        // Figure 6 envelope: the oracle never loses to blind speculation.
        for wl in int92_suite() {
            let always = h.run(&wl, 8, Policy::Always);
            let psync = h.run(&wl, 8, Policy::PSync);
            assert!(
                psync.cycles <= always.cycles + always.cycles / 50,
                "{}: PSYNC {} vs ALWAYS {}",
                wl.name,
                psync.cycles,
                always.cycles
            );
        }
    }

    #[test]
    fn window_report_is_cached() {
        let mut h = Harness::new(Scale::Tiny);
        let wl = by_name("compress").unwrap();
        let _ = h.window_report(&wl);
        let _ = h.window_report(&wl);
        assert_eq!(h.window_reports.len(), 1);
        assert_eq!(h.trace_emulations(), 1);
    }

    #[test]
    fn parallel_harness_matches_serial_tables() {
        let wanted = ["table6", "fig5"];
        let render = |workers: usize| {
            let mut h = Harness::with_runner(Scale::Tiny, Runner::new(workers));
            wanted
                .iter()
                .map(|id| experiment(&mut h, id).unwrap().render())
                .collect::<Vec<_>>()
        };
        assert_eq!(render(1), render(4));
    }

    #[test]
    fn table_json_is_deterministic_and_structured() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x", "1"]);
        let v = table_json(&t);
        assert_eq!(v.to_string(), r#"{"header":["a","b"],"rows":[["x","1"]]}"#);
    }

    #[test]
    fn experiment_registry_is_consistent() {
        for id in EXPERIMENT_IDS {
            assert!(experiment_title(id).is_some(), "{id} has no title");
        }
        assert!(experiment_title("nope").is_none());
        assert!(PAPER_IDS.iter().all(|id| EXPERIMENT_IDS.contains(id)));
        assert!(ABLATION_IDS.iter().all(|id| EXPERIMENT_IDS.contains(id)));
        assert_eq!(PAPER_IDS.len() + ABLATION_IDS.len(), EXPERIMENT_IDS.len());
    }
}
