//! Grid descriptors and the scatter-gather merge contract.
//!
//! A *grid request* names a set of experiments at one workload scale.
//! Both execution strategies must produce byte-identical output:
//!
//! - **Lone backend**: run every experiment locally through a
//!   [`Harness`] and concatenate the result documents.
//! - **Scatter-gather**: decompose the request into [`Cell`]s (one per
//!   distinct [`Demand`] across every requested experiment), compute
//!   each cell anywhere — on any machine, in any order — ship the
//!   outputs back over the [`mds_runner::wire`] codec, [`Harness::insert`]
//!   them, and render the same documents from the merged harness.
//!
//! The equivalence holds because result documents are pure functions of
//! the simulation outputs, the wire codec is lossless for every
//! table-observable metric, and [`merged_doc`] renders experiments in
//! request order regardless of cell completion order.
//!
//! Cells carry a *route key* (`workload@scale`, the trace-cache key): a
//! placement layer that shards cells by route key sends every cell that
//! replays the same trace to the same owner, so each backend emulates
//! only its own shard of the workload set.

use crate::{demands, experiment, experiment_title, results_doc, scale_by_name, scale_name};
use crate::{Demand, Harness};
use mds_harness::json::Json;
use mds_runner::{Job, JobKind};
use mds_workloads::Scale;

/// A parsed `POST /v1/grids` descriptor.
///
/// The body is a strict JSON object — unknown fields are rejected so
/// typos fail loudly rather than silently running the default:
///
/// ```json
/// {"experiments": ["fig5", "table7"], "scale": "tiny"}
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRequest {
    /// Requested experiment ids, in response order. Duplicates are
    /// preserved (the document repeats).
    pub experiments: Vec<String>,
    /// Workload scale shared by every cell.
    pub scale: Scale,
    /// Bypass any result cache and recompute (lone-backend serving
    /// honours this; scatter-gather always computes).
    pub fresh: bool,
}

impl GridRequest {
    /// Parses and validates a request body.
    ///
    /// Errors are positioned messages suitable for a 400 response body.
    pub fn from_body(body: &str) -> Result<GridRequest, String> {
        let json = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let Json::Object(pairs) = &json else {
            return Err("request body must be a JSON object".to_string());
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "experiments" | "scale" | "fresh") {
                return Err(format!(
                    "unknown field {key:?}: expected experiments, scale, or fresh"
                ));
            }
        }
        let experiments_json = json
            .get("experiments")
            .ok_or_else(|| "missing required field \"experiments\"".to_string())?;
        let items = experiments_json
            .as_array()
            .ok_or_else(|| "\"experiments\" must be an array of experiment ids".to_string())?;
        if items.is_empty() {
            return Err("\"experiments\" must name at least one experiment".to_string());
        }
        let mut experiments = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_str()
                .ok_or_else(|| "\"experiments\" entries must be strings".to_string())?;
            if experiment_title(id).is_none() {
                return Err(format!("unknown experiment {id:?}"));
            }
            experiments.push(id.to_string());
        }
        let scale = match json.get("scale") {
            None => Scale::Small,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| "\"scale\" must be a string".to_string())?;
                scale_by_name(name).ok_or_else(|| {
                    format!("unknown scale {name:?}: expected tiny, small, or full")
                })?
            }
        };
        let fresh = match json.get("fresh") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("\"fresh\" must be a boolean".to_string()),
        };
        Ok(GridRequest {
            experiments,
            scale,
            fresh,
        })
    }
}

/// One unit of scatter-gather work: a demand from some requested
/// experiment plus the runnable job that computes it.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The demand this cell satisfies; its output slots into a
    /// [`Harness`] via [`Harness::insert`].
    pub demand: Demand,
    /// The runnable form, shippable via [`mds_runner::wire::encode_job`].
    pub job: Job,
}

impl Cell {
    /// The cell's stable id (the demand/grid-job id).
    pub fn id(&self) -> &str {
        &self.job.id
    }

    /// The placement key: `workload@scale`, the trace-cache key. Every
    /// cell replaying the same emulated trace shares a route key.
    pub fn route_key(&self) -> String {
        route_key(self.job.workload.name, self.job.scale)
    }
}

/// The placement key for a workload at a scale (see [`Cell::route_key`]).
pub fn route_key(workload: &str, scale: Scale) -> String {
    format!("{workload}@{}", scale_name(scale))
}

/// Decomposes a set of experiments into cells: the union of every
/// experiment's demands, deduplicated by demand id, in submission order.
///
/// Overlapping experiments (fig5 and fig6 share paper-configuration
/// runs, for example) contribute one cell per distinct demand, mirroring
/// the dedup [`Harness::prefetch`] performs for local execution.
pub fn cells(experiments: &[String], scale: Scale) -> Vec<Cell> {
    let mut out: Vec<Cell> = Vec::new();
    let mut queued: std::collections::HashSet<String> = std::collections::HashSet::new();
    for id in experiments {
        for demand in demands(id) {
            let cell_id = demand.id();
            if !queued.insert(cell_id.clone()) {
                continue;
            }
            let job = Job {
                id: cell_id,
                workload: *demand.workload(),
                scale,
                kind: demand.kind(),
            };
            out.push(Cell { demand, job });
        }
    }
    out
}

/// One summary job per distinct route key, for a cache-warming pass:
/// dispatching each to its placement owner triggers exactly the trace
/// emulations that owner will need, before the real cells arrive.
pub fn warm_jobs(cells: &[Cell]) -> Vec<(String, Job)> {
    let mut out: Vec<(String, Job)> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for cell in cells {
        let key = cell.route_key();
        if !seen.insert(key.clone()) {
            continue;
        }
        let job = Job {
            id: format!("warm/{}", cell.job.workload.name),
            workload: cell.job.workload,
            scale: cell.job.scale,
            kind: JobKind::Summary,
        };
        out.push((key, job));
    }
    out
}

/// Renders the grid response: each experiment's result document (the
/// exact [`results_doc`] bytes `repro` writes and `/v1/experiments`
/// serves), concatenated in request order.
///
/// Every document is newline-terminated, so a multi-experiment response
/// equals the concatenation of the per-experiment `RESULTS_<id>.json`
/// files, and a single-experiment response equals that file exactly.
///
/// Demands already satisfied on `h` — e.g. via [`Harness::insert`] of
/// scattered cell outputs — are not recomputed; anything missing is
/// computed locally, so a partially merged harness still renders a
/// correct (if slower) response.
pub fn merged_doc(h: &mut Harness, experiments: &[String]) -> Result<String, String> {
    let mut out = String::new();
    for id in experiments {
        let title = experiment_title(id).ok_or_else(|| format!("unknown experiment {id:?}"))?;
        let table = experiment(h, id).expect("experiment exists whenever its title does");
        out.push_str(&results_doc(id, title, h.scale(), &table).pretty());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::rng::Rng;
    use mds_runner::wire::{decode_job, decode_output, encode_job, encode_output};
    use mds_runner::{Grid, Runner};

    #[test]
    fn request_parses_defaults_and_explicit_fields() {
        let req = GridRequest::from_body(r#"{"experiments": ["fig5"]}"#).unwrap();
        assert_eq!(req.experiments, vec!["fig5".to_string()]);
        assert_eq!(req.scale, Scale::Small);
        assert!(!req.fresh);

        let req = GridRequest::from_body(
            r#"{"experiments": ["fig5", "table7", "fig5"], "scale": "tiny", "fresh": true}"#,
        )
        .unwrap();
        assert_eq!(req.experiments, vec!["fig5", "table7", "fig5"]);
        assert_eq!(req.scale, Scale::Tiny);
        assert!(req.fresh);
    }

    #[test]
    fn request_rejects_malformed_bodies() {
        for (body, needle) in [
            ("nonsense", "invalid JSON"),
            ("[1]", "must be a JSON object"),
            ("{}", "missing required field"),
            (
                r#"{"experiments": ["fig5"], "shard": 3}"#,
                "unknown field \"shard\"",
            ),
            (r#"{"experiments": "fig5"}"#, "must be an array"),
            (r#"{"experiments": []}"#, "at least one"),
            (r#"{"experiments": [5]}"#, "must be strings"),
            (
                r#"{"experiments": ["fig99"]}"#,
                "unknown experiment \"fig99\"",
            ),
            (
                r#"{"experiments": ["fig5"], "scale": "huge"}"#,
                "unknown scale \"huge\"",
            ),
            (
                r#"{"experiments": ["fig5"], "scale": 4}"#,
                "\"scale\" must be a string",
            ),
            (
                r#"{"experiments": ["fig5"], "fresh": "yes"}"#,
                "must be a boolean",
            ),
        ] {
            let err = GridRequest::from_body(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {body:?}: error {err:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn cells_dedup_across_overlapping_experiments() {
        let ids = vec!["fig5".to_string(), "fig6".to_string()];
        let both = cells(&ids, Scale::Tiny);
        let fig5_only = cells(&ids[..1], Scale::Tiny);
        let fig6_only = cells(&ids[1..], Scale::Tiny);
        // fig5 and fig6 overlap (both need paper-configuration runs), so
        // the union must be strictly smaller than the sum of the parts.
        assert!(both.len() < fig5_only.len() + fig6_only.len());
        let mut seen = std::collections::HashSet::new();
        for cell in &both {
            assert!(
                seen.insert(cell.id().to_string()),
                "duplicate cell {}",
                cell.id()
            );
            assert_eq!(cell.job.scale, Scale::Tiny);
        }
        // Submission order: fig5's demands first, in demands() order.
        let fig5_ids: Vec<_> = fig5_only.iter().map(|c| c.id().to_string()).collect();
        let prefix: Vec<_> = both[..fig5_ids.len()]
            .iter()
            .map(|c| c.id().to_string())
            .collect();
        assert_eq!(fig5_ids, prefix);
    }

    #[test]
    fn warm_jobs_cover_each_route_key_once() {
        let ids = vec!["fig5".to_string(), "table1".to_string()];
        let cs = cells(&ids, Scale::Tiny);
        let warm = warm_jobs(&cs);
        let distinct: std::collections::HashSet<_> = cs.iter().map(|c| c.route_key()).collect();
        assert_eq!(warm.len(), distinct.len());
        for (key, job) in &warm {
            assert!(matches!(job.kind, JobKind::Summary));
            assert_eq!(*key, route_key(job.workload.name, job.scale));
        }
    }

    /// The merge contract end to end: computing cells remotely (here:
    /// through the wire codec, in a shuffled arrival order) and merging
    /// must be byte-identical to plain local execution.
    #[test]
    fn shuffled_wire_merge_matches_local_execution() {
        let ids = vec!["fig5".to_string(), "table1".to_string()];
        let runner = Runner::from_env(Some(2));

        // Reference: one harness computes everything locally.
        let mut local = Harness::with_runner(Scale::Tiny, runner.clone());
        let expect = merged_doc(&mut local, &ids).unwrap();

        // Scatter: encode each cell, execute the decoded job elsewhere
        // (a separate runner sharing nothing), encode the output back.
        let cs = cells(&ids, Scale::Tiny);
        let mut arrivals: Vec<(Demand, mds_runner::JobOutput)> = Vec::new();
        for cell in &cs {
            let job = decode_job(&encode_job(&cell.job)).unwrap();
            let mut grid = Grid::new(job.scale);
            grid.push(job);
            let outcome = Runner::from_env(Some(1)).run(&grid);
            let output = outcome.results.into_iter().next().unwrap().output;
            let output = decode_output(&encode_output(&output)).unwrap();
            arrivals.push((cell.demand.clone(), output));
        }

        // Gather: insert in a deterministic shuffle of arrival order.
        let mut rng = Rng::seed_from_u64(0x9d1d);
        for i in (1..arrivals.len()).rev() {
            arrivals.swap(i, rng.gen_range(0..i + 1));
        }
        let mut merged = Harness::with_runner(Scale::Tiny, runner);
        for (demand, output) in &arrivals {
            assert!(
                merged.insert(demand, output.clone()),
                "rejected {}",
                demand.id()
            );
        }
        let before = merged.run_stats().len();
        let got = merged_doc(&mut merged, &ids).unwrap();
        assert_eq!(got, expect);
        // Nothing was recomputed: every demand arrived via insert.
        assert_eq!(merged.run_stats().len(), before);
    }

    #[test]
    fn insert_rejects_mismatched_output_kinds() {
        let wl = mds_workloads::by_name("compress").unwrap();
        let mut h = Harness::with_runner(Scale::Tiny, Runner::from_env(Some(1)));
        let summary = mds_emu::TraceSummary::default();
        assert!(!h.insert(&Demand::Window(wl), mds_runner::JobOutput::Summary(summary)));
        assert!(h.insert(
            &Demand::Summary(wl),
            mds_runner::JobOutput::Summary(summary)
        ));
    }
}
