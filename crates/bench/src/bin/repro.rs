//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [options] <experiment>...
//! repro list
//! ```
//!
//! All requested experiments are expanded first, their simulation demands
//! merged into one grid, and that grid fanned out across worker threads
//! with each workload emulated exactly once. Tables are printed in
//! request order; output is byte-identical at any `--jobs` level.
//!
//! The default scale is `small` (the reproduction default documented in
//! EXPERIMENTS.md); `tiny` is for smoke tests, `full` approaches the
//! paper's run lengths.

use mds_bench::Harness;
use mds_runner::Runner;
use mds_workloads::Scale;
use std::process::ExitCode;

/// Exit code for usage errors and unknown experiment ids.
const EXIT_USAGE: u8 = 1;
/// Exit code for I/O failures while writing `--json` results.
const EXIT_IO: u8 = 2;

fn print_help() {
    println!(
        "usage: repro [options] <experiment>...\n\
         \x20      repro [options] wdl check|expand|list|import <file>...\n\
         \n\
         subcommands:\n\
         \x20 list                    print experiment ids, then every workload\n\
         \x20                          grouped by suite with its phenotype\n\
         \x20 wdl check <file>...     parse and validate spec files\n\
         \x20 wdl expand <file>...    print each sampled member's canonical form\n\
         \x20 wdl list <file>...      print each member's name and phenotype\n\
         \x20 wdl import <file>...    convert raw dependence streams (task/load/\n\
         \x20                          store lines) to WDL trace blocks on stdout\n\
         \n\
         options:\n\
         \x20 --scale tiny|small|full  workload scale (default: small)\n\
         \x20 --jobs N                 worker threads (default: $MDS_JOBS, else\n\
         \x20                          available parallelism; 1 = fully serial)\n\
         \x20 --markdown               render tables as GitHub Markdown\n\
         \x20 --json                   also write RESULTS_<experiment>.json\n\
         \x20                          (to $MDS_RESULTS_DIR, default repo root)\n\
         \x20 --wdl FILE               register the spec's generated workloads\n\
         \x20                          (repeatable; default experiment: wdl)\n\
         \x20 --wdl-seed N             family seed for --wdl expansion (default 0)\n\
         \x20 --wdl-count K            members per scenario family (default 4)\n\
         \x20 --help, -h               this help\n\
         \n\
         experiments:\n\
         \x20 table1..table9 fig5 fig6 fig7\n\
         \x20 ablate-mdpt ablate-counter ablate-tagging ablate-ooo\n\
         \x20 all          every table and figure of the paper\n\
         \x20 ablations    the four ablation studies\n\
         \x20 wdl          the generated-workload table (needs --wdl)\n\
         \n\
         Tables print to stdout; run statistics (wall time, trace-cache\n\
         traffic, worker utilization) print to stderr. Table output is\n\
         deterministic: byte-identical at every --jobs level.\n\
         \n\
         exit codes:\n\
         \x20 0  success\n\
         \x20 {EXIT_USAGE}  usage error, unknown experiment id, or invalid spec\n\
         \x20 {EXIT_IO}  I/O error writing --json results"
    );
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("repro: {msg}");
    eprintln!("run `repro --help` for usage, or `repro list` for experiment ids");
    ExitCode::from(EXIT_USAGE)
}

fn unknown_experiment(id: &str) -> ExitCode {
    eprintln!("repro: unknown experiment '{id}'");
    eprintln!("valid experiments:");
    for id in mds_bench::EXPERIMENT_IDS {
        eprintln!("  {id}");
    }
    eprintln!("  all        (expands to every table and figure)");
    eprintln!("  ablations  (expands to the four ablation studies)");
    eprintln!("  wdl        (generated workloads; needs --wdl <file>)");
    ExitCode::from(EXIT_USAGE)
}

/// Everything the command line can request, parsed but not yet resolved
/// against the experiment registry or the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    scale: Scale,
    markdown: bool,
    json: bool,
    jobs: Option<usize>,
    wanted: Vec<String>,
    wdl_files: Vec<String>,
    wdl_seed: u64,
    wdl_count: u32,
    help: bool,
}

/// Parses the argument list (without the program name). Pure and
/// environment-free so the rejection rules are unit-testable; `MDS_JOBS`
/// validation happens later through [`Runner::try_from_env`].
fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Small,
        markdown: false,
        json: false,
        jobs: None,
        wanted: Vec::new(),
        wdl_files: Vec::new(),
        wdl_seed: 0,
        wdl_count: 4,
        help: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else {
                    return Err("--scale needs a value (tiny|small|full)".to_string());
                };
                cli.scale = mds_bench::scale_by_name(&v)
                    .ok_or_else(|| format!("invalid scale '{v}' (expected tiny|small|full)"))?;
            }
            "--jobs" => {
                let Some(v) = args.next() else {
                    return Err("--jobs needs a positive integer".to_string());
                };
                cli.jobs = Some(mds_runner::parse_jobs(&v).map_err(|e| format!("--jobs: {e}"))?);
            }
            "--wdl" => {
                let Some(v) = args.next() else {
                    return Err("--wdl needs a spec file path".to_string());
                };
                cli.wdl_files.push(v);
            }
            "--wdl-seed" => {
                let Some(v) = args.next() else {
                    return Err("--wdl-seed needs an unsigned integer".to_string());
                };
                cli.wdl_seed = v
                    .parse()
                    .map_err(|_| format!("--wdl-seed: invalid seed '{v}'"))?;
            }
            "--wdl-count" => {
                let Some(v) = args.next() else {
                    return Err("--wdl-count needs a positive integer".to_string());
                };
                cli.wdl_count = v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--wdl-count: expected a positive integer, got '{v}'")
                })?;
            }
            "--markdown" => cli.markdown = true,
            "--json" => cli.json = true,
            "--help" | "-h" => cli.help = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            other => cli.wanted.push(other.to_string()),
        }
    }
    Ok(cli)
}

/// Reads and parses one spec file, rendering I/O and spec diagnostics
/// as `file:line:col: message` usage errors.
fn load_spec(file: &str) -> Result<mds_wdl::Spec, ExitCode> {
    let src = match std::fs::read_to_string(file) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("repro: cannot read {file}: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
    };
    mds_wdl::parse_spec(&src).map_err(|d| {
        eprintln!("repro: {}", d.render(file));
        ExitCode::from(EXIT_USAGE)
    })
}

/// Parses and registers every `--wdl` spec with the dynamic workload
/// registry.
fn register_wdl_files(files: &[String], seed: u64, count: u32) -> Result<(), ExitCode> {
    for file in files {
        let spec = load_spec(file)?;
        if let Err(d) = mds_wdl::register_spec(&spec, seed, count) {
            eprintln!("repro: {}", d.render(file));
            return Err(ExitCode::from(EXIT_USAGE));
        }
    }
    Ok(())
}

/// `repro list`: experiment ids, then every workload grouped by suite
/// with its dependence phenotype.
fn print_list() {
    println!("experiments:");
    for id in mds_bench::EXPERIMENT_IDS {
        println!("  {id}");
    }
    println!("  all");
    println!("  ablations");
    println!("  wdl  (with --wdl <file>)");
    let mut workloads = mds_workloads::all();
    workloads.extend(mds_workloads::generated());
    let mut last_suite = None;
    for wl in workloads {
        if last_suite != Some(wl.suite) {
            println!("\n{} workloads:", wl.suite.name());
            last_suite = Some(wl.suite);
        }
        println!("  {:<24} {}", wl.name, wl.phenotype);
    }
}

/// `repro wdl <verb> <file>...` — spec tooling that never simulates.
fn run_wdl_subcommand(verb: &str, files: &[String], seed: u64, count: u32) -> ExitCode {
    if files.is_empty() {
        return usage_error(&format!("wdl {verb} needs at least one file"));
    }
    match verb {
        "check" => {
            for file in files {
                let spec = match load_spec(file) {
                    Ok(spec) => spec,
                    Err(code) => return code,
                };
                println!(
                    "{file}: ok ({} scenario{}, {} trace{})",
                    spec.scenarios.len(),
                    if spec.scenarios.len() == 1 { "" } else { "s" },
                    spec.traces.len(),
                    if spec.traces.len() == 1 { "" } else { "s" },
                );
            }
        }
        "expand" => {
            for file in files {
                let spec = match load_spec(file) {
                    Ok(spec) => spec,
                    Err(code) => return code,
                };
                for s in &spec.scenarios {
                    for inst in mds_wdl::expand(s, seed, count) {
                        println!("{}", inst.canonical());
                    }
                }
            }
        }
        "list" => {
            for file in files {
                let spec = match load_spec(file) {
                    Ok(spec) => spec,
                    Err(code) => return code,
                };
                match mds_wdl::register_spec(&spec, seed, count) {
                    Ok(workloads) => {
                        for wl in workloads {
                            println!("{:<32} {}", wl.name, wl.phenotype);
                        }
                    }
                    Err(d) => {
                        eprintln!("repro: {}", d.render(file));
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
        }
        "import" => {
            for file in files {
                let src = match std::fs::read_to_string(file) {
                    Ok(src) => src,
                    Err(e) => {
                        eprintln!("repro: cannot read {file}: {e}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                };
                let name = std::path::Path::new(file)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("imported");
                match mds_wdl::import::parse_stream(&src) {
                    Ok(events) => print!("{}", mds_wdl::import::to_wdl(name, &events)),
                    Err(d) => {
                        eprintln!("repro: {}", d.render(file));
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
        }
        other => {
            return usage_error(&format!(
                "unknown wdl subcommand '{other}' (valid: check, expand, list, import)"
            ));
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => return usage_error(&msg),
    };
    if cli.help {
        print_help();
        return ExitCode::SUCCESS;
    }
    let Cli {
        scale,
        markdown,
        json,
        jobs,
        mut wanted,
        wdl_files,
        wdl_seed,
        wdl_count,
        ..
    } = cli;

    // The `wdl` subcommand family operates on spec files directly and
    // never simulates: `repro wdl check|expand|list|import <file>...`.
    if wanted.first().map(String::as_str) == Some("wdl") && wanted.len() > 1 {
        return run_wdl_subcommand(&wanted[1], &wanted[2..], wdl_seed, wdl_count);
    }

    // Register every `--wdl` spec before anything that lists or runs
    // workloads, so generated families are visible everywhere below.
    if let Err(code) = register_wdl_files(&wdl_files, wdl_seed, wdl_count) {
        return code;
    }

    if wanted.iter().any(|w| w == "list") {
        print_list();
        return ExitCode::SUCCESS;
    }
    if wanted.is_empty() {
        if wdl_files.is_empty() {
            return usage_error("no experiments requested");
        }
        // `repro --wdl spec.wdl` alone means "run the generated table".
        wanted.push("wdl".to_string());
    }

    // Expand the group keywords, reject unknown ids up front, and dedupe
    // while preserving first-mention order.
    let mut ids: Vec<&'static str> = Vec::new();
    for want in &wanted {
        let expansion: &[&'static str] = match want.as_str() {
            "all" => &mds_bench::PAPER_IDS,
            "ablations" => &mds_bench::ABLATION_IDS,
            "wdl" => {
                if mds_workloads::generated().is_empty() {
                    return usage_error("experiment 'wdl' needs at least one --wdl <file>");
                }
                &["wdl"]
            }
            other => match mds_bench::EXPERIMENT_IDS.iter().find(|id| **id == other) {
                Some(id) => std::slice::from_ref(id),
                None => return unknown_experiment(other),
            },
        };
        for &id in expansion {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }

    // `try_from_env` also validates `MDS_JOBS`, so a typo in the
    // environment is a loud usage error rather than a silent default.
    let runner = match Runner::try_from_env(jobs) {
        Ok(runner) => runner,
        Err(msg) => return usage_error(&msg),
    };
    let mut h = Harness::with_runner(scale, runner);

    // One grid for everything requested: maximum fan-out, and each
    // workload is emulated exactly once across all experiments.
    let union: Vec<mds_bench::Demand> = ids.iter().flat_map(|id| mds_bench::demands(id)).collect();
    h.prefetch(&union);

    for &id in &ids {
        let title = mds_bench::experiment_title(id).expect("validated above");
        let table = mds_bench::experiment(&mut h, id).expect("validated above");
        println!("## {id}: {title}\n");
        if markdown {
            println!("{}", table.render_markdown());
        } else {
            println!("{}", table.render());
        }
        if json {
            match mds_bench::write_results(id, title, scale, &table) {
                Ok(path) => eprintln!("repro: wrote {}", path.display()),
                Err(e) => {
                    eprintln!("repro: failed to write results for {id}: {e}");
                    return ExitCode::from(EXIT_IO);
                }
            }
        }
    }

    for stats in h.run_stats() {
        eprint!("{}", stats.render());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_cli(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn accepts_a_full_command_line() {
        let cli = parse(&[
            "--scale",
            "tiny",
            "--jobs",
            "4",
            "--markdown",
            "--json",
            "fig5",
            "table1",
        ])
        .unwrap();
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.jobs, Some(4));
        assert!(cli.markdown && cli.json && !cli.help);
        assert_eq!(cli.wanted, ["fig5", "table1"]);
    }

    #[test]
    fn rejects_zero_jobs() {
        let err = parse(&["--jobs", "0", "fig5"]).unwrap_err();
        assert!(err.starts_with("--jobs:"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_jobs() {
        for bad in ["lots", "-3", "2.5", ""] {
            let err = parse(&["--jobs", bad]).unwrap_err();
            assert!(err.starts_with("--jobs:"), "'{bad}': {err}");
        }
    }

    #[test]
    fn rejects_missing_values_and_unknown_flags() {
        assert!(parse(&["--jobs"]).unwrap_err().contains("positive integer"));
        assert!(parse(&["--scale"]).unwrap_err().contains("tiny|small|full"));
        assert!(parse(&["--scale", "huge"]).unwrap_err().contains("huge"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn help_flag_is_recognized_anywhere() {
        assert!(parse(&["fig5", "-h"]).unwrap().help);
        assert!(parse(&["--help"]).unwrap().help);
    }

    #[test]
    fn wdl_flags_accumulate_and_default() {
        let cli = parse(&["fig5"]).unwrap();
        assert!(cli.wdl_files.is_empty());
        assert_eq!((cli.wdl_seed, cli.wdl_count), (0, 4));
        let cli = parse(&[
            "--wdl",
            "a.wdl",
            "--wdl",
            "b.wdl",
            "--wdl-seed",
            "9",
            "--wdl-count",
            "2",
        ])
        .unwrap();
        assert_eq!(cli.wdl_files, ["a.wdl", "b.wdl"]);
        assert_eq!((cli.wdl_seed, cli.wdl_count), (9, 2));
        assert!(cli.wanted.is_empty());
    }

    #[test]
    fn wdl_flags_reject_bad_values() {
        assert!(parse(&["--wdl"]).unwrap_err().contains("spec file"));
        assert!(parse(&["--wdl-seed", "x"]).unwrap_err().contains("seed"));
        for bad in ["0", "-1", "lots"] {
            let err = parse(&["--wdl-count", bad]).unwrap_err();
            assert!(err.contains("positive integer"), "'{bad}': {err}");
        }
    }

    #[test]
    fn wdl_subcommand_words_stay_positional() {
        let cli = parse(&["wdl", "check", "a.wdl"]).unwrap();
        assert_eq!(cli.wanted, ["wdl", "check", "a.wdl"]);
    }
}
