//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [options] <experiment>...
//! repro list
//! ```
//!
//! All requested experiments are expanded first, their simulation demands
//! merged into one grid, and that grid fanned out across worker threads
//! with each workload emulated exactly once. Tables are printed in
//! request order; output is byte-identical at any `--jobs` level.
//!
//! The default scale is `small` (the reproduction default documented in
//! EXPERIMENTS.md); `tiny` is for smoke tests, `full` approaches the
//! paper's run lengths.

use mds_bench::Harness;
use mds_runner::Runner;
use mds_workloads::Scale;
use std::process::ExitCode;

/// Exit code for usage errors and unknown experiment ids.
const EXIT_USAGE: u8 = 1;
/// Exit code for I/O failures while writing `--json` results.
const EXIT_IO: u8 = 2;

fn print_help() {
    println!(
        "usage: repro [options] <experiment>...\n\
         \n\
         subcommands:\n\
         \x20 list                    print every experiment id, one per line\n\
         \n\
         options:\n\
         \x20 --scale tiny|small|full  workload scale (default: small)\n\
         \x20 --jobs N                 worker threads (default: $MDS_JOBS, else\n\
         \x20                          available parallelism; 1 = fully serial)\n\
         \x20 --markdown               render tables as GitHub Markdown\n\
         \x20 --json                   also write RESULTS_<experiment>.json\n\
         \x20                          (to $MDS_RESULTS_DIR, default repo root)\n\
         \x20 --help, -h               this help\n\
         \n\
         experiments:\n\
         \x20 table1..table9 fig5 fig6 fig7\n\
         \x20 ablate-mdpt ablate-counter ablate-tagging ablate-ooo\n\
         \x20 all          every table and figure of the paper\n\
         \x20 ablations    the four ablation studies\n\
         \n\
         Tables print to stdout; run statistics (wall time, trace-cache\n\
         traffic, worker utilization) print to stderr. Table output is\n\
         deterministic: byte-identical at every --jobs level.\n\
         \n\
         exit codes:\n\
         \x20 0  success\n\
         \x20 {EXIT_USAGE}  usage error or unknown experiment id\n\
         \x20 {EXIT_IO}  I/O error writing --json results"
    );
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("repro: {msg}");
    eprintln!("run `repro --help` for usage, or `repro list` for experiment ids");
    ExitCode::from(EXIT_USAGE)
}

fn unknown_experiment(id: &str) -> ExitCode {
    eprintln!("repro: unknown experiment '{id}'");
    eprintln!("valid experiments:");
    for id in mds_bench::EXPERIMENT_IDS {
        eprintln!("  {id}");
    }
    eprintln!("  all        (expands to every table and figure)");
    eprintln!("  ablations  (expands to the four ablation studies)");
    ExitCode::from(EXIT_USAGE)
}

/// Everything the command line can request, parsed but not yet resolved
/// against the experiment registry or the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    scale: Scale,
    markdown: bool,
    json: bool,
    jobs: Option<usize>,
    wanted: Vec<String>,
    help: bool,
}

/// Parses the argument list (without the program name). Pure and
/// environment-free so the rejection rules are unit-testable; `MDS_JOBS`
/// validation happens later through [`Runner::try_from_env`].
fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Small,
        markdown: false,
        json: false,
        jobs: None,
        wanted: Vec::new(),
        help: false,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else {
                    return Err("--scale needs a value (tiny|small|full)".to_string());
                };
                cli.scale = mds_bench::scale_by_name(&v)
                    .ok_or_else(|| format!("invalid scale '{v}' (expected tiny|small|full)"))?;
            }
            "--jobs" => {
                let Some(v) = args.next() else {
                    return Err("--jobs needs a positive integer".to_string());
                };
                cli.jobs = Some(mds_runner::parse_jobs(&v).map_err(|e| format!("--jobs: {e}"))?);
            }
            "--markdown" => cli.markdown = true,
            "--json" => cli.json = true,
            "--help" | "-h" => cli.help = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            other => cli.wanted.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => return usage_error(&msg),
    };
    if cli.help {
        print_help();
        return ExitCode::SUCCESS;
    }
    let Cli {
        scale,
        markdown,
        json,
        jobs,
        wanted,
        ..
    } = cli;

    if wanted.iter().any(|w| w == "list") {
        for id in mds_bench::EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if wanted.is_empty() {
        return usage_error("no experiments requested");
    }

    // Expand the group keywords, reject unknown ids up front, and dedupe
    // while preserving first-mention order.
    let mut ids: Vec<&'static str> = Vec::new();
    for want in &wanted {
        let expansion: &[&'static str] = match want.as_str() {
            "all" => &mds_bench::PAPER_IDS,
            "ablations" => &mds_bench::ABLATION_IDS,
            other => match mds_bench::EXPERIMENT_IDS.iter().find(|id| **id == other) {
                Some(id) => std::slice::from_ref(id),
                None => return unknown_experiment(other),
            },
        };
        for &id in expansion {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }

    // `try_from_env` also validates `MDS_JOBS`, so a typo in the
    // environment is a loud usage error rather than a silent default.
    let runner = match Runner::try_from_env(jobs) {
        Ok(runner) => runner,
        Err(msg) => return usage_error(&msg),
    };
    let mut h = Harness::with_runner(scale, runner);

    // One grid for everything requested: maximum fan-out, and each
    // workload is emulated exactly once across all experiments.
    let union: Vec<mds_bench::Demand> = ids.iter().flat_map(|id| mds_bench::demands(id)).collect();
    h.prefetch(&union);

    for &id in &ids {
        let title = mds_bench::experiment_title(id).expect("validated above");
        let table = mds_bench::experiment(&mut h, id).expect("validated above");
        println!("## {id}: {title}\n");
        if markdown {
            println!("{}", table.render_markdown());
        } else {
            println!("{}", table.render());
        }
        if json {
            match mds_bench::write_results(id, title, scale, &table) {
                Ok(path) => eprintln!("repro: wrote {}", path.display()),
                Err(e) => {
                    eprintln!("repro: failed to write results for {id}: {e}");
                    return ExitCode::from(EXIT_IO);
                }
            }
        }
    }

    for stats in h.run_stats() {
        eprint!("{}", stats.render());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        parse_cli(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn accepts_a_full_command_line() {
        let cli = parse(&[
            "--scale",
            "tiny",
            "--jobs",
            "4",
            "--markdown",
            "--json",
            "fig5",
            "table1",
        ])
        .unwrap();
        assert_eq!(cli.scale, Scale::Tiny);
        assert_eq!(cli.jobs, Some(4));
        assert!(cli.markdown && cli.json && !cli.help);
        assert_eq!(cli.wanted, ["fig5", "table1"]);
    }

    #[test]
    fn rejects_zero_jobs() {
        let err = parse(&["--jobs", "0", "fig5"]).unwrap_err();
        assert!(err.starts_with("--jobs:"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_jobs() {
        for bad in ["lots", "-3", "2.5", ""] {
            let err = parse(&["--jobs", bad]).unwrap_err();
            assert!(err.starts_with("--jobs:"), "'{bad}': {err}");
        }
    }

    #[test]
    fn rejects_missing_values_and_unknown_flags() {
        assert!(parse(&["--jobs"]).unwrap_err().contains("positive integer"));
        assert!(parse(&["--scale"]).unwrap_err().contains("tiny|small|full"));
        assert!(parse(&["--scale", "huge"]).unwrap_err().contains("huge"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
    }

    #[test]
    fn help_flag_is_recognized_anywhere() {
        assert!(parse(&["fig5", "-h"]).unwrap().help);
        assert!(parse(&["--help"]).unwrap().help);
    }
}
