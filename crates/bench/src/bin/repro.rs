//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale tiny|small|full] [--markdown] <experiment>...
//!
//! experiments:
//!   table1 table2 table3 table4 table5 table6 table7 table8 table9
//!   fig5 fig6 fig7
//!   ablate-mdpt ablate-counter ablate-tagging ablate-ooo
//!   all          every table and figure above
//!   ablations    the four ablation studies
//! ```
//!
//! The default scale is `small` (the reproduction default documented in
//! EXPERIMENTS.md); `tiny` is for smoke tests, `full` approaches the
//! paper's run lengths.

use mds_bench::Harness;
use mds_sim::table::Table;
use mds_workloads::Scale;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--scale tiny|small|full] [--markdown] <experiment>...\n\
         experiments: table1..table9 fig5 fig6 fig7 ablate-mdpt ablate-counter \
         ablate-tagging ablate-ooo all ablations"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut markdown = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next() else { return usage() };
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => return usage(),
                };
            }
            "--markdown" => markdown = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage();
    }

    let mut h = Harness::new(scale);
    let emit = |title: &str, table: &Table, markdown: bool| {
        println!("## {title}\n");
        if markdown {
            println!("{}", table.render_markdown());
        } else {
            println!("{}", table.render());
        }
    };

    for want in &wanted {
        match want.as_str() {
            "all" => {
                for (id, title, table) in mds_bench::all_experiments(&mut h) {
                    emit(&format!("{id}: {title}"), &table, markdown);
                }
            }
            "ablations" => {
                emit(
                    "ablate-mdpt: MDPT capacity sweep",
                    &mds_bench::ablate_mdpt(&mut h),
                    markdown,
                );
                emit(
                    "ablate-tagging: distance vs address instance tags",
                    &mds_bench::ablate_tagging(&mut h),
                    markdown,
                );
                emit(
                    "ablate-counter: prediction counter sweep",
                    &mds_bench::ablate_counter(&mut h),
                    markdown,
                );
                emit(
                    "ablate-ooo: policies on the superscalar model",
                    &mds_bench::ablate_ooo(&mut h),
                    markdown,
                );
            }
            "table1" => emit(
                "table1: dynamic instruction counts",
                &mds_bench::table1(&mut h),
                markdown,
            ),
            "table2" => emit(
                "table2: functional unit latencies",
                &mds_bench::table2(),
                markdown,
            ),
            "table3" => emit(
                "table3: mis-speculations vs window size",
                &mds_bench::table3(&mut h),
                markdown,
            ),
            "table4" => emit(
                "table4: static dependences covering 99.9% of mis-speculations",
                &mds_bench::table4(&mut h),
                markdown,
            ),
            "table5" => emit(
                "table5: DDC miss rates (unrealistic OOO)",
                &mds_bench::table5(&mut h),
                markdown,
            ),
            "table6" => emit(
                "table6: Multiscalar mis-speculations",
                &mds_bench::table6(&mut h),
                markdown,
            ),
            "table7" => emit(
                "table7: Multiscalar DDC miss rates",
                &mds_bench::table7(&mut h),
                markdown,
            ),
            "table8" => emit(
                "table8: prediction breakdown",
                &mds_bench::table8(&mut h),
                markdown,
            ),
            "table9" => emit(
                "table9: mis-speculations per committed load",
                &mds_bench::table9(&mut h),
                markdown,
            ),
            "fig5" => emit(
                "fig5: ALWAYS/WAIT/PSYNC over NEVER",
                &mds_bench::fig5(&mut h),
                markdown,
            ),
            "fig6" => emit(
                "fig6: SYNC/ESYNC/PSYNC over ALWAYS",
                &mds_bench::fig6(&mut h),
                markdown,
            ),
            "fig7" => emit(
                "fig7: SPEC95 over ALWAYS (8 stages)",
                &mds_bench::fig7(&mut h),
                markdown,
            ),
            "ablate-mdpt" => emit(
                "ablate-mdpt: MDPT capacity sweep",
                &mds_bench::ablate_mdpt(&mut h),
                markdown,
            ),
            "ablate-tagging" => emit(
                "ablate-tagging: distance vs address instance tags",
                &mds_bench::ablate_tagging(&mut h),
                markdown,
            ),
            "ablate-counter" => emit(
                "ablate-counter: prediction counter sweep",
                &mds_bench::ablate_counter(&mut h),
                markdown,
            ),
            "ablate-ooo" => emit(
                "ablate-ooo: policies on the superscalar model",
                &mds_bench::ablate_ooo(&mut h),
                markdown,
            ),
            _ => return usage(),
        }
    }
    ExitCode::SUCCESS
}
