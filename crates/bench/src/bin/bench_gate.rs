//! Bench-regression gate: compares a freshly measured `BENCH_*.json`
//! against a committed baseline and fails when any benchmark slowed down
//! beyond tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json>
//! bench_gate --min-speedup <report.json> <slow-name> <fast-name> <factor>
//! bench_gate --max-ratio <report.json> <name-a> <name-b> <factor>
//! ```
//!
//! Absolute medians are not comparable across machines (a CI runner may
//! be uniformly 2x slower than the box that produced the baseline), so
//! the gate normalizes first: it computes each benchmark's fresh/baseline
//! ratio, takes the **median ratio** across the suite as the machine-speed
//! factor, and flags a benchmark only when its own ratio exceeds
//! `median_ratio * tolerance`. A uniform slowdown passes; one benchmark
//! regressing relative to its peers fails.
//!
//! `MDS_BENCH_TOLERANCE` (default `1.6`) sets the per-benchmark headroom
//! over the suite's median ratio — wide enough for shared-runner noise,
//! tight enough to catch a real hot-path regression.
//!
//! The `--min-speedup` mode checks a claimed speedup *within* one report:
//! benchmark `<slow-name>` must be at least `<factor>` times slower than
//! `<fast-name>`. Both sides use the fastest-batch time (`min_ns`), not
//! the median: on a shared machine the minimum over ~25 batches is the
//! best estimate of uncontended speed, so a contention spike during one
//! benchmark's measurement window cannot fake or mask a speedup.
//!
//! The `--max-ratio` mode bounds one benchmark by another *within* one
//! report: `<name-a>`'s median must be at most `<factor>` times
//! `<name-b>`'s. Both sides come from the same run on the same machine,
//! so the bound is machine-independent. This is how the serve suite pins
//! restart-warm serving to steady-warm serving: a restarted server must
//! answer from its store-prewarmed cache, not recompute.
//!
//! Exit status: `0` when every shared benchmark is within tolerance (or
//! the speedup holds), `1` on a regression (or a missed speedup), `2` on
//! usage or parse errors.

use mds_harness::bench::{median, BenchReport};
use std::process::ExitCode;

/// Checks that `slow` is at least `factor` times slower than `fast`
/// within a single report, comparing fastest-batch times.
fn min_speedup(report_path: &str, slow: &str, fast: &str, factor: f64) -> ExitCode {
    let report = match load(report_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let find = |name: &str| report.results.iter().find(|b| b.name == name);
    let (Some(s), Some(f)) = (find(slow), find(fast)) else {
        eprintln!("bench_gate: '{slow}' or '{fast}' not found in {report_path}");
        return ExitCode::from(2);
    };
    if s.min_ns <= 0.0 || f.min_ns <= 0.0 {
        eprintln!("bench_gate: non-positive min_ns in {report_path}");
        return ExitCode::from(2);
    }
    let ratio = s.min_ns / f.min_ns;
    println!(
        "bench_gate: {slow} {:.1}ms vs {fast} {:.1}ms => speedup x{ratio:.2} (required x{factor:.2})",
        s.min_ns / 1e6,
        f.min_ns / 1e6,
    );
    if ratio >= factor {
        println!("bench_gate: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: FAIL (speedup x{ratio:.2} below required x{factor:.2})");
        ExitCode::FAILURE
    }
}

/// Checks that `a`'s median stays within `factor` times `b`'s median
/// within a single report.
fn max_ratio(report_path: &str, a: &str, b: &str, factor: f64) -> ExitCode {
    let report = match load(report_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let find = |name: &str| report.results.iter().find(|r| r.name == name);
    let (Some(num), Some(den)) = (find(a), find(b)) else {
        eprintln!("bench_gate: '{a}' or '{b}' not found in {report_path}");
        return ExitCode::from(2);
    };
    if num.median_ns <= 0.0 || den.median_ns <= 0.0 {
        eprintln!("bench_gate: non-positive median_ns in {report_path}");
        return ExitCode::from(2);
    }
    let ratio = num.median_ns / den.median_ns;
    println!(
        "bench_gate: {a} {:.3}ms vs {b} {:.3}ms => ratio x{ratio:.2} (allowed x{factor:.2})",
        num.median_ns / 1e6,
        den.median_ns / 1e6,
    );
    if ratio <= factor {
        println!("bench_gate: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: FAIL (ratio x{ratio:.2} above allowed x{factor:.2})");
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("bench_gate: read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("bench_gate: parse {path}: {e}"))
}

fn tolerance() -> f64 {
    std::env::var("MDS_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t >= 1.0)
        .unwrap_or(1.6)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--min-speedup") {
        let [_, report, slow, fast, factor] = args.as_slice() else {
            eprintln!(
                "usage: bench_gate --min-speedup <report.json> <slow-name> <fast-name> <factor>"
            );
            return ExitCode::from(2);
        };
        let Ok(factor) = factor.parse::<f64>() else {
            eprintln!("bench_gate: bad factor '{factor}'");
            return ExitCode::from(2);
        };
        return min_speedup(report, slow, fast, factor);
    }
    if args.first().is_some_and(|a| a == "--max-ratio") {
        let [_, report, a, b, factor] = args.as_slice() else {
            eprintln!("usage: bench_gate --max-ratio <report.json> <name-a> <name-b> <factor>");
            return ExitCode::from(2);
        };
        let Ok(factor) = factor.parse::<f64>() else {
            eprintln!("bench_gate: bad factor '{factor}'");
            return ExitCode::from(2);
        };
        return max_ratio(report, a, b, factor);
    }
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // (name, baseline median, fresh median) for benchmarks present in both.
    let shared: Vec<(&str, f64, f64)> = baseline
        .results
        .iter()
        .filter_map(|b| {
            let f = fresh.results.iter().find(|f| f.name == b.name)?;
            (b.median_ns > 0.0).then_some((b.name.as_str(), b.median_ns, f.median_ns))
        })
        .collect();
    if shared.is_empty() {
        eprintln!("bench_gate: no shared benchmarks between the two reports");
        return ExitCode::from(2);
    }
    for missing in fresh
        .results
        .iter()
        .filter(|f| !baseline.results.iter().any(|b| b.name == f.name))
    {
        println!("bench_gate: note: '{}' has no baseline yet", missing.name);
    }

    let ratios: Vec<f64> = shared.iter().map(|(_, b, f)| f / b).collect();
    let machine_factor = median(&ratios);
    let tol = tolerance();
    let limit = machine_factor * tol;
    println!(
        "bench_gate: {} shared benchmarks, machine factor {machine_factor:.3}, \
         tolerance {tol:.2} => per-bench limit {limit:.3}",
        shared.len()
    );

    let mut failed = false;
    for ((name, base_ns, fresh_ns), ratio) in shared.iter().zip(&ratios) {
        let verdict = if *ratio > limit {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>9}  {name}  {:.1}ms -> {:.1}ms  (x{ratio:.3})",
            base_ns / 1e6,
            fresh_ns / 1e6,
        );
    }
    if failed {
        eprintln!("bench_gate: FAIL (regression beyond x{limit:.3})");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: OK");
        ExitCode::SUCCESS
    }
}
