//! Bench-regression gate: compares a freshly measured `BENCH_*.json`
//! against a committed baseline and fails when any benchmark slowed down
//! beyond tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json>
//! ```
//!
//! Absolute medians are not comparable across machines (a CI runner may
//! be uniformly 2x slower than the box that produced the baseline), so
//! the gate normalizes first: it computes each benchmark's fresh/baseline
//! ratio, takes the **median ratio** across the suite as the machine-speed
//! factor, and flags a benchmark only when its own ratio exceeds
//! `median_ratio * tolerance`. A uniform slowdown passes; one benchmark
//! regressing relative to its peers fails.
//!
//! `MDS_BENCH_TOLERANCE` (default `1.6`) sets the per-benchmark headroom
//! over the suite's median ratio — wide enough for shared-runner noise,
//! tight enough to catch a real hot-path regression.
//!
//! Exit status: `0` when every shared benchmark is within tolerance,
//! `1` on a regression, `2` on usage or parse errors.

use mds_harness::bench::{median, BenchReport};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("bench_gate: read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("bench_gate: parse {path}: {e}"))
}

fn tolerance() -> f64 {
    std::env::var("MDS_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| *t >= 1.0)
        .unwrap_or(1.6)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // (name, baseline median, fresh median) for benchmarks present in both.
    let shared: Vec<(&str, f64, f64)> = baseline
        .results
        .iter()
        .filter_map(|b| {
            let f = fresh.results.iter().find(|f| f.name == b.name)?;
            (b.median_ns > 0.0).then_some((b.name.as_str(), b.median_ns, f.median_ns))
        })
        .collect();
    if shared.is_empty() {
        eprintln!("bench_gate: no shared benchmarks between the two reports");
        return ExitCode::from(2);
    }
    for missing in fresh
        .results
        .iter()
        .filter(|f| !baseline.results.iter().any(|b| b.name == f.name))
    {
        println!("bench_gate: note: '{}' has no baseline yet", missing.name);
    }

    let ratios: Vec<f64> = shared.iter().map(|(_, b, f)| f / b).collect();
    let machine_factor = median(&ratios);
    let tol = tolerance();
    let limit = machine_factor * tol;
    println!(
        "bench_gate: {} shared benchmarks, machine factor {machine_factor:.3}, \
         tolerance {tol:.2} => per-bench limit {limit:.3}",
        shared.len()
    );

    let mut failed = false;
    for ((name, base_ns, fresh_ns), ratio) in shared.iter().zip(&ratios) {
        let verdict = if *ratio > limit {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>9}  {name}  {:.1}ms -> {:.1}ms  (x{ratio:.3})",
            base_ns / 1e6,
            fresh_ns / 1e6,
        );
    }
    if failed {
        eprintln!("bench_gate: FAIL (regression beyond x{limit:.3})");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: OK");
        ExitCode::SUCCESS
    }
}
