//! Benchmarks for the experiment runner: end-to-end wall clock of a fixed
//! mini-grid executed the naive way (each cell re-emulates its workload)
//! versus through `mds-runner` at 1/2/4 workers.
//!
//! Run with `cargo bench --bench runner`; results are written to
//! `BENCH_runner.json` at the workspace root. The grid is a
//! dependence-analysis sweep over three workloads: the table-1 trace
//! summary, one window-analysis cell per table-7 DDC capacity, and the
//! superscalar model under three policies — 33 cells over 3 distinct
//! traces. The naive loop pays one emulation per cell (33); the runner
//! pays one per workload (3) and replays the shared trace everywhere
//! else, which is where the speedup comes from. Extra workers add
//! parallel speedup on multi-core hosts and cost only scheduling noise
//! on single-core ones.

use mds_core::Policy;
use mds_emu::Emulator;
use mds_harness::bench::Harness;
use mds_ooo::{OooConfig, OooSim, WindowAnalyzer, WindowConfig};
use mds_runner::{Grid, Job, JobKind, Runner};
use mds_workloads::{by_name, Scale, Workload};
use std::hint::black_box;

const WORKLOADS: [&str; 3] = ["compress", "sc", "espresso"];
const DDC_SWEEP: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];
const OOO_POLICIES: [Policy; 3] = [Policy::Always, Policy::Sync, Policy::PSync];

fn window_config(ddc: usize) -> WindowConfig {
    WindowConfig {
        window_sizes: vec![8, 16, 32, 64, 128, 256, 512],
        ddc_sizes: vec![ddc],
    }
}

fn mini_grid(workloads: &[Workload], scale: Scale) -> Grid {
    let mut grid = Grid::new(scale);
    for wl in workloads {
        grid.summary(wl);
        for ddc in DDC_SWEEP {
            grid.push(Job {
                id: format!("{}/window/ddc{ddc}", wl.name),
                workload: *wl,
                scale,
                kind: JobKind::Window(window_config(ddc)),
            });
        }
        for policy in OOO_POLICIES {
            grid.superscalar(
                wl,
                OooConfig {
                    policy,
                    ..Default::default()
                },
            );
        }
    }
    grid
}

/// The baseline every experiment used before the runner existed: emulate
/// the workload afresh for every cell of the grid.
fn naive_pass(workloads: &[Workload], scale: Scale) -> u64 {
    let mut acc = 0u64;
    for wl in workloads {
        let program = wl.build(scale);
        acc += Emulator::new(&program)
            .run_with(|_| {})
            .expect("runs")
            .instructions;
        for ddc in DDC_SWEEP {
            let mut analyzer = WindowAnalyzer::new(window_config(ddc));
            Emulator::new(&program)
                .run_with(|d| analyzer.observe(d))
                .expect("runs");
            acc += analyzer.finish().instructions;
        }
        for policy in OOO_POLICIES {
            let mut sim = OooSim::new(OooConfig {
                policy,
                ..Default::default()
            });
            Emulator::new(&program)
                .run_with(|d| sim.observe(d))
                .expect("runs");
            acc += sim.finish().cycles;
        }
    }
    acc
}

fn main() {
    let mut h = Harness::new("runner");
    let (scale, tag) = match h.scale() {
        "small" => (Scale::Small, "small"),
        "full" => (Scale::Full, "full"),
        _ => (Scale::Tiny, "tiny"),
    };
    let workloads: Vec<Workload> = WORKLOADS
        .iter()
        .map(|n| by_name(n).expect("registered"))
        .collect();
    let grid = mini_grid(&workloads, scale);

    h.bench(&format!("grid/{tag}/naive_serial"), |b| {
        b.iter(|| black_box(naive_pass(&workloads, scale)));
    });

    for jobs in [1usize, 2, 4] {
        let runner = Runner::new(jobs);
        h.bench(&format!("grid/{tag}/runner_jobs{jobs}"), |b| {
            b.iter(|| {
                let outcome = runner.run(&grid);
                assert_eq!(outcome.stats.cache_misses as usize, workloads.len());
                black_box(outcome.results.len())
            });
        });
    }

    h.finish();
}
