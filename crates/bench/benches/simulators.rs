//! Criterion benchmarks for the simulators themselves (throughput of the
//! emulator, the window analyzer, and the Multiscalar timing model).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mds_core::Policy;
use mds_emu::Emulator;
use mds_multiscalar::{MsConfig, Multiscalar};
use mds_ooo::{WindowAnalyzer, WindowConfig};
use mds_workloads::{by_name, Scale};
use std::hint::black_box;

fn trace_len(p: &mds_isa::Program) -> u64 {
    Emulator::new(p).run_with(|_| {}).unwrap().instructions
}

fn bench_emulator(c: &mut Criterion) {
    let p = (by_name("compress").unwrap().build)(Scale::Tiny);
    let n = trace_len(&p);
    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(n));
    g.bench_function("compress_tiny", |b| {
        b.iter(|| {
            let mut count = 0u64;
            Emulator::new(&p).run_with(|_| count += 1).unwrap();
            black_box(count)
        });
    });
    g.finish();
}

fn bench_window_analyzer(c: &mut Criterion) {
    let p = (by_name("compress").unwrap().build)(Scale::Tiny);
    let n = trace_len(&p);
    let mut g = c.benchmark_group("window_analyzer");
    g.throughput(Throughput::Elements(n));
    g.bench_function("compress_tiny_7ws", |b| {
        b.iter(|| {
            let mut a = WindowAnalyzer::new(WindowConfig::default());
            Emulator::new(&p).run_with(|d| a.observe(d)).unwrap();
            black_box(a.finish().instructions)
        });
    });
    g.finish();
}

fn bench_multiscalar(c: &mut Criterion) {
    let p = (by_name("compress").unwrap().build)(Scale::Tiny);
    let n = trace_len(&p);
    let mut g = c.benchmark_group("multiscalar");
    g.throughput(Throughput::Elements(n));
    for policy in [Policy::Always, Policy::Esync] {
        g.bench_function(format!("compress_tiny_8st_{policy}"), |b| {
            let sim = Multiscalar::new(MsConfig::paper(8, policy));
            b.iter(|| black_box(sim.run(&p).unwrap().cycles));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_emulator, bench_window_analyzer, bench_multiscalar);
criterion_main!(benches);
