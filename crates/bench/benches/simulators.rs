//! Benchmarks for the simulators themselves (throughput of the emulator,
//! the window analyzer, and the Multiscalar timing model).
//!
//! Run with `cargo bench --bench simulators -- --scale small`; results are
//! written to `BENCH_simulators.json` at the workspace root. The `--scale`
//! argument picks the workload scale (tiny/small/full, default tiny).

use mds_core::Policy;
use mds_emu::Emulator;
use mds_harness::bench::Harness;
use mds_multiscalar::{MsConfig, Multiscalar};
use mds_ooo::{WindowAnalyzer, WindowConfig};
use mds_workloads::{by_name, Scale};
use std::hint::black_box;

fn trace_len(p: &mds_isa::Program) -> u64 {
    Emulator::new(p).run_with(|_| {}).unwrap().instructions
}

fn main() {
    let mut h = Harness::new("simulators");
    let (scale, tag) = match h.scale() {
        "small" => (Scale::Small, "small"),
        "full" => (Scale::Full, "full"),
        _ => (Scale::Tiny, "tiny"),
    };
    let p = by_name("compress").unwrap().build(scale);
    let n = trace_len(&p);

    h.bench_with_throughput(&format!("emulator/compress_{tag}"), n, |b| {
        b.iter(|| {
            let mut count = 0u64;
            Emulator::new(&p).run_with(|_| count += 1).unwrap();
            black_box(count)
        });
    });

    h.bench_with_throughput(&format!("window_analyzer/compress_{tag}_7ws"), n, |b| {
        b.iter(|| {
            let mut a = WindowAnalyzer::new(WindowConfig::default());
            Emulator::new(&p).run_with(|d| a.observe(d)).unwrap();
            black_box(a.finish().instructions)
        });
    });

    for stages in [4usize, 8] {
        for policy in [Policy::Always, Policy::Esync] {
            h.bench_with_throughput(
                &format!("multiscalar/compress_{tag}_{stages}st_{policy}"),
                n,
                |b| {
                    let sim = Multiscalar::new(MsConfig::paper(stages, policy));
                    b.iter(|| black_box(sim.run(&p).unwrap().cycles));
                },
            );
        }
    }

    h.finish();
}
