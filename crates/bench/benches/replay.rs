//! Benchmarks for the cross-policy fork-replay engine.
//!
//! Run with `cargo bench --bench replay -- --scale small`; results are
//! written to `BENCH_replay.json` at the workspace root. The suite
//! measures the three levers the fork engine pulls:
//!
//! - `plan_build` — one-time cost of lowering a captured trace into the
//!   structure-of-arrays [`mds_emu::ReplayPlan`];
//! - per-policy `scratch` vs `planned` replay — the SoA walk with
//!   pre-resolved dependences against the legacy record-stream walk;
//! - `scratch_x6` vs `fused_x6` — the paper's actual workload shape: all
//!   six speculation policies over one trace, either as six independent
//!   scratch replays or as one fused job sharing the policy-independent
//!   prefix. The CI bench gate enforces `fused_x6` ≥ 2× `scratch_x6` at
//!   8 stages.

use mds_core::Policy;
use mds_emu::Trace;
use mds_harness::bench::Harness;
use mds_multiscalar::{run_fused, run_planned, MsConfig, Multiscalar};
use mds_workloads::{by_name, Scale};
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("replay");
    let (scale, tag) = match h.scale() {
        "small" => (Scale::Small, "small"),
        "full" => (Scale::Full, "full"),
        _ => (Scale::Tiny, "tiny"),
    };
    let p = by_name("compress").unwrap().build(scale);
    let trace = Trace::capture(&p).unwrap();
    let n = trace.summary().instructions;

    h.bench_with_throughput(&format!("replay/plan_build_compress_{tag}"), n, |b| {
        b.iter(|| {
            // Rebuild from the raw records each iteration; the cached
            // plan on `trace` would make this a no-op.
            black_box(mds_emu::ReplayPlan::build(trace.records()).resident_bytes())
        });
    });

    // Warm the shared plan once so every replay measurement below sees
    // the steady state (plan built, trace resident) the runner sees.
    let _ = trace.replay_plan();

    for stages in [4usize, 8] {
        let configs: Vec<MsConfig> = Policy::ALL
            .iter()
            .map(|&policy| MsConfig::paper(stages, policy))
            .collect();

        h.bench_with_throughput(
            &format!("multiscalar/compress_{tag}_{stages}st_scratch_x6"),
            n * configs.len() as u64,
            |b| {
                b.iter(|| {
                    let mut cycles = 0u64;
                    for config in &configs {
                        let sim = Multiscalar::new(config.clone());
                        cycles += sim.run_trace(trace.records().iter().copied()).cycles;
                    }
                    black_box(cycles)
                });
            },
        );

        h.bench_with_throughput(
            &format!("multiscalar/compress_{tag}_{stages}st_fused_x6"),
            n * configs.len() as u64,
            |b| {
                b.iter(|| {
                    let total: u64 = run_fused(&trace, &configs).iter().map(|r| r.cycles).sum();
                    black_box(total)
                });
            },
        );

        for policy in [Policy::Always, Policy::Esync] {
            let config = MsConfig::paper(stages, policy);
            h.bench_with_throughput(
                &format!("multiscalar/compress_{tag}_{stages}st_{policy}_scratch"),
                n,
                |b| {
                    let sim = Multiscalar::new(config.clone());
                    b.iter(|| black_box(sim.run_trace(trace.records().iter().copied()).cycles));
                },
            );
            h.bench_with_throughput(
                &format!("multiscalar/compress_{tag}_{stages}st_{policy}_planned"),
                n,
                |b| {
                    b.iter(|| black_box(run_planned(&trace, &config).cycles));
                },
            );
        }
    }

    h.finish();
}
