//! Benchmarks for the WDL pipeline: spec parsing, member lowering, and
//! a generated family end-to-end under the Multiscalar model against the
//! hand-written `compress` workload it imitates.
//!
//! Run with `cargo bench --bench wdl -- --scale small`; results are
//! written to `BENCH_wdl.json` at the workspace root and gated by
//! `ci/bench_gate.sh` like every other suite. Throughputs: `parse` in
//! source bytes, `lower` and the end-to-end runs in emulated (or
//! lowered) instructions.

use mds_core::Policy;
use mds_harness::bench::Harness;
use mds_multiscalar::{MsConfig, Multiscalar};
use mds_workloads::{by_name, Scale};
use std::hint::black_box;

/// A representative spec: every field populated, one family scenario.
const SPEC_SRC: &str = "\
scenario bench_family {
  seed = 12
  tasks = 2048 .. 4096
  task_size = { small: 0.6, medium: 0.3, large: 0.1 }
  distances = { 1: 0.04, 3: 0.04, 8: 0.04 }
  edges = 2 .. 8
  locality = 0.95
  path_dep = 0.25
  fp = 0.1
  expect_misspec_per_load = 0.0 .. 0.2
}
";

fn main() {
    let mut h = Harness::new("wdl");
    let (scale, tag) = match h.scale() {
        "small" => (Scale::Small, "small"),
        "full" => (Scale::Full, "full"),
        _ => (Scale::Tiny, "tiny"),
    };

    h.bench_with_throughput("wdl/parse_spec", SPEC_SRC.len() as u64, |b| {
        b.iter(|| black_box(mds_wdl::parse_spec(black_box(SPEC_SRC)).unwrap()));
    });

    let spec = mds_wdl::parse_spec(SPEC_SRC).unwrap();
    let inst = mds_wdl::instantiate(&spec.scenarios[0], 0, 0);
    let lowered = mds_wdl::compile(&inst, scale);
    h.bench_with_throughput(
        &format!("wdl/lower_member_{tag}"),
        lowered.instructions().len() as u64,
        |b| {
            b.iter(|| black_box(mds_wdl::compile(black_box(&inst), scale)));
        },
    );

    // End-to-end: one generated member vs the hand-written workload its
    // scenario imitates, both under the paper's 8-stage ESYNC machine.
    // Comparable per-instruction cost here means generated families are
    // as cheap to sweep as the built-in suites.
    let compress = by_name("compress").unwrap().build(scale);
    for (label, program) in [("generated", &lowered), ("compress", &compress)] {
        let insts = Multiscalar::new(MsConfig::paper(8, Policy::Esync))
            .run(program)
            .expect("runs")
            .instructions;
        h.bench_with_throughput(&format!("wdl/ms_esync_{label}_{tag}"), insts, |b| {
            b.iter(|| {
                let sim = Multiscalar::new(MsConfig::paper(8, Policy::Esync));
                black_box(sim.run(black_box(program)).expect("runs").cycles)
            });
        });
    }

    h.finish();
}
