//! Micro-benchmarks for the core hardware structures.
//!
//! Run with `cargo bench --bench structures`; results are written to
//! `BENCH_structures.json` at the workspace root.

use mds_core::{Ddc, DepEdge, Mdpt, MdptConfig, Mdst, SyncUnit, SyncUnitConfig};
use mds_harness::bench::Harness;
use mds_mem::{BankedCache, BankedCacheConfig, Bus, Cache, CacheConfig};
use mds_predict::{LruTable, PathHistory, PathPredictor, SatCounter};
use std::hint::black_box;

fn main() {
    let mut h = Harness::new("structures");

    h.bench("mdpt_lookup_hit", |b| {
        let mut mdpt = Mdpt::new(MdptConfig::default());
        for i in 0..64u32 {
            mdpt.allocate(DepEdge::new(i, i + 1000), 1, None);
        }
        let mut pc = 1000u32;
        b.iter(|| {
            pc = 1000 + (pc + 1) % 64;
            black_box(mdpt.predicting_for_load(black_box(pc)).len())
        });
    });

    h.bench("mdpt_allocate_evict", |b| {
        let mut mdpt = Mdpt::new(MdptConfig {
            capacity: 64,
            ..Default::default()
        });
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            mdpt.allocate(DepEdge::new(i % 1000, (i % 1000) + 1000), 1, None);
        });
    });

    h.bench("mdst_sync_roundtrip", |b| {
        let mut mdst = Mdst::new(512);
        let edge = DepEdge::new(3, 7);
        let mut inst = 0u64;
        b.iter(|| {
            inst += 1;
            mdst.sync_load(edge, inst, 1);
            black_box(mdst.sync_store(edge, inst, 2));
        });
    });

    h.bench("sync_unit_load_store", |b| {
        let mut unit = SyncUnit::new(SyncUnitConfig {
            stages: 8,
            ..Default::default()
        });
        unit.record_misspeculation(DepEdge::new(3, 7), 1, None);
        let mut inst = 1u64;
        b.iter(|| {
            inst += 1;
            unit.on_load_ready(7, inst, inst as u32, None);
            black_box(unit.on_store_issue(3, inst - 1, 0).len());
            unit.release_load(inst as u32);
        });
    });

    h.bench("ddc_observe", |b| {
        let mut ddc = Ddc::new(128);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(ddc.observe(DepEdge::new(i % 200, i % 200 + 1)));
        });
    });

    h.bench("sat_counter", |b| {
        let mut ctr = SatCounter::new(3, 3);
        b.iter(|| {
            ctr.incr();
            ctr.decr();
            black_box(ctr.is_at_least(3))
        });
    });

    h.bench("lru_table_get_insert", |b| {
        let mut t: LruTable<u64, u64> = LruTable::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.insert(i % 2048, i);
            black_box(t.get(&(i % 2048)).copied())
        });
    });

    h.bench("path_predictor", |b| {
        let mut p = PathPredictor::new(4096, 4);
        let mut hist = PathHistory::new(4);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let h = hist.hash();
            let pred = p.predict(i % 64, h);
            p.update(i % 64, h, i % 7);
            hist.push(i % 7);
            black_box(pred)
        });
    });

    h.bench("cache_access", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 8 * 1024,
            ways: 1,
            block_bytes: 64,
        });
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) % (64 * 1024);
            black_box(cache.access(addr, false))
        });
    });

    h.bench("banked_cache_access", |b| {
        let mut dc = BankedCache::new(BankedCacheConfig::paper_default(8));
        let mut bus = Bus::paper_default();
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(8) % (32 * 1024);
            black_box(dc.access(now, addr, false, &mut bus).done_at)
        });
    });

    h.finish();
}
