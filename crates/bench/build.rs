//! Derives the **output epoch**: an FNV-1a 64 hash over the sources of
//! every crate that can change canonical result bytes. The durable
//! result tier (`mds-store`) tags each stored record with this epoch, so
//! a simulator change automatically invalidates persisted results
//! instead of serving bytes the current binary would not produce.
//!
//! The hash covers file *contents* keyed by workspace-relative paths, in
//! sorted order, so it is deterministic across checkouts and rebuild
//! hosts. Every hashed file is declared with `rerun-if-changed`, so the
//! epoch tracks edits without forcing rebuilds for unrelated crates.

use std::path::{Path, PathBuf};

/// Crates whose sources feed the canonical result bytes. Serving-layer
/// crates (serve, cluster, store, harness) are deliberately excluded:
/// they move bytes around but never compute them.
const OUTPUT_CRATES: &[&str] = &[
    "isa",
    "emu",
    "predict",
    "mem",
    "core",
    "ooo",
    "multiscalar",
    "sim",
    "workloads",
    "wdl",
    "runner",
    "bench",
];

fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("manifest dir"));
    let crates = manifest.parent().expect("crates dir").to_path_buf();

    let mut files = Vec::new();
    for name in OUTPUT_CRATES {
        collect_rs(&crates.join(name).join("src"), &mut files);
    }
    files.sort();

    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for file in &files {
        println!("cargo:rerun-if-changed={}", file.display());
        let rel = file.strip_prefix(&crates).unwrap_or(file);
        // Normalize separators so the epoch matches across platforms.
        let rel = rel.to_string_lossy().replace('\\', "/");
        hash = fnv1a_extend(hash, rel.as_bytes());
        hash = fnv1a_extend(hash, &std::fs::read(file).expect("read hashed source"));
    }
    println!("cargo:rustc-env=MDS_OUTPUT_EPOCH={hash}");
}
