//! `mds` — a reproduction of *"Dynamic Speculation and Synchronization of
//! Data Dependences"* (Moshovos, Breach, Vijaykumar & Sohi, ISCA 1997).
//!
//! This umbrella crate re-exports the whole workspace so applications can
//! depend on one crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `mds-isa` | the instruction set, assembler, program builder |
//! | [`emu`] | `mds-emu` | the functional emulator / committed-trace source |
//! | [`predict`] | `mds-predict` | saturating counters, LRU tables, path predictors |
//! | [`mem`] | `mds-mem` | caches, banked caches, bus, ARB |
//! | [`core`] | `mds-core` | **the paper's contribution**: MDPT, MDST, DDC, policies |
//! | [`ooo`] | `mds-ooo` | the "unrealistic OOO" window analyzer + superscalar model |
//! | [`multiscalar`] | `mds-multiscalar` | the cycle-level Multiscalar timing model |
//! | [`workloads`] | `mds-workloads` | the synthetic benchmark suites |
//! | [`runner`] | `mds-runner` | parallel experiment grids + shared trace cache |
//! | [`serve`] | `mds-serve` | HTTP/JSON experiment serving + load generator |
//! | [`cluster`] | `mds-cluster` | sharded, replicated experiment-serving tier |
//! | [`store`] | `mds-store` | durable result tier: append-only log + snapshot |
//! | [`sim`] | `mds-sim` | statistics and table rendering |
//!
//! # Quickstart
//!
//! Compare blind speculation against the paper's ESYNC mechanism on the
//! espresso-like workload (whose hot recurrence blind speculation keeps
//! violating):
//!
//! ```
//! use mds::core::Policy;
//! use mds::multiscalar::{MsConfig, Multiscalar};
//! use mds::workloads::{by_name, Scale};
//!
//! let program = by_name("espresso").unwrap().build(Scale::Tiny);
//!
//! let blind = Multiscalar::new(MsConfig::paper(8, Policy::Always))
//!     .run(&program)?;
//! let esync = Multiscalar::new(MsConfig::paper(8, Policy::Esync))
//!     .run(&program)?;
//!
//! // The mechanism eliminates most mis-speculations...
//! assert!(esync.misspeculations < blind.misspeculations / 2);
//! // ...runs faster...
//! assert!(esync.cycles < blind.cycles);
//! // ...and executes the same committed instructions.
//! assert_eq!(esync.instructions, blind.instructions);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable binaries and the `mds-bench` crate's
//! `repro` binary for the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mds_cluster as cluster;
pub use mds_core as core;
pub use mds_emu as emu;
pub use mds_isa as isa;
pub use mds_mem as mem;
pub use mds_multiscalar as multiscalar;
pub use mds_ooo as ooo;
pub use mds_predict as predict;
pub use mds_runner as runner;
pub use mds_serve as serve;
pub use mds_sim as sim;
pub use mds_store as store;
pub use mds_workloads as workloads;
